#include "runtime/worker.hpp"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/require.hpp"
#include "obs/trace.hpp"
#include "runtime/chunk_sender.hpp"

namespace de::runtime {

namespace {

/// Receive outcome of one frame: a chunk, end-of-stream, skip (dropped
/// control/malformed/duplicate frame — caller should keep receiving), an
/// expired bounded wait (reliable mode only), an epoch announcement, a
/// stream-dispatch announcement (multi-tenant providers only), a membership
/// change, or a lane eviction (multi-tenant) — the requester/front door is
/// the one sending all of the announcement kinds.
enum class RxKind {
  kChunk,
  kStop,
  kSkip,
  kTimeout,
  kReconfig,
  kDispatch,
  kMembership,
  kLaneEvict,
};

/// Receive-side state of one node, shared by the provider and gather loops.
/// The dedup window is borrowed from the loop owner: it must span the whole
/// run (chunk ids are per-sender monotonic across images), never one image.
struct RxState {
  rpc::Transport& transport;
  const ReliabilityOptions& reliability;
  DataPlaneStats& stats;
  ChunkDedup& dedup;
};

/// Acks a tracked frame back to its sender's control mailbox and filters
/// repeats. True when the frame is fresh (first delivery).
bool ack_and_dedup(RxState& rx, rpc::NodeId from_node, std::uint32_t chunk_id) {
  if (chunk_id == 0 || from_node == rpc::kNilNode) return true;
  // Ack before dedup: a repeat usually means our previous ack was lost.
  rpc::Frame ack(
      rpc::encode_ack(rpc::AckMsg{rx.transport.local_node(), chunk_id}));
  rx.stats.wire_bytes.fetch_add(static_cast<Bytes>(ack.size()),
                                std::memory_order_relaxed);
  rx.transport.send(ctrl_addr(from_node), std::move(ack));
  if (!rx.dedup.fresh(from_node, chunk_id)) {
    rx.stats.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
    obs::trace_instant(obs::Cat::kDupDrop, -1, -1, -1,
                       static_cast<std::int64_t>(chunk_id));
    return false;
  }
  return true;
}

RxKind receive_frame(RxState& rx, RxChunk& out,
                     rpc::ReconfigureMsg* reconfig = nullptr,
                     rpc::DispatchMsg* dispatch = nullptr,
                     rpc::MembershipMsg* membership = nullptr,
                     rpc::LaneEvictMsg* lane_evict = nullptr) {
  rpc::Frame payload;
  if (!rx.reliability.enabled) {
    auto received = rx.transport.receive(rpc::kDataMailbox);
    if (!received.has_value()) return RxKind::kStop;  // transport shut down
    payload = std::move(*received);
  } else {
    switch (rx.transport.receive_for(rpc::kDataMailbox,
                                     rx.reliability.recv_timeout_ms, payload)) {
      case rpc::RecvStatus::kClosed:
        return RxKind::kStop;
      case rpc::RecvStatus::kTimeout:
        return RxKind::kTimeout;
      case rpc::RecvStatus::kOk:
        break;
    }
  }
  try {
    const auto type = rpc::peek_type(payload);
    if (type == rpc::MsgType::kShutdown) return RxKind::kStop;
    if (type == rpc::MsgType::kReconfigure && reconfig != nullptr) {
      *reconfig = rpc::decode_reconfigure(payload);
      if (!ack_and_dedup(rx, reconfig->from_node, reconfig->chunk_id)) {
        return RxKind::kSkip;  // retransmitted announcement
      }
      return RxKind::kReconfig;
    }
    if (type == rpc::MsgType::kDispatch && dispatch != nullptr) {
      *dispatch = rpc::decode_dispatch(payload);
      if (!ack_and_dedup(rx, dispatch->from_node, dispatch->chunk_id)) {
        return RxKind::kSkip;  // retransmitted announcement
      }
      return RxKind::kDispatch;
    }
    if (type == rpc::MsgType::kMembership && membership != nullptr) {
      *membership = rpc::decode_membership(payload);
      if (!ack_and_dedup(rx, membership->from_node, membership->chunk_id)) {
        return RxKind::kSkip;  // retransmitted announcement
      }
      return RxKind::kMembership;
    }
    if (type == rpc::MsgType::kLaneEvict && lane_evict != nullptr) {
      *lane_evict = rpc::decode_lane_evict(payload);
      if (!ack_and_dedup(rx, lane_evict->from_node, lane_evict->chunk_id)) {
        return RxKind::kSkip;  // retransmitted announcement
      }
      return RxKind::kLaneEvict;
    }
    if (!rpc::is_chunk_type(type)) {
      return RxKind::kSkip;  // halo requests (push-based plan), stray control
    }
    // Borrowed decode: the view aliases the frame's buffer, which stays
    // put when the frame is moved into the result.
    out.view = rpc::decode_chunk_view(payload);
    out.frame = std::move(payload);
  } catch (const Error&) {
    return RxKind::kSkip;  // malformed frame: drop, keep the node alive
  }
  if (!ack_and_dedup(rx, out.view.from_node, out.view.chunk_id)) {
    return RxKind::kSkip;
  }
  return RxKind::kChunk;
}

/// "Still waiting on (seq, volume)" to every other node's control mailbox;
/// holders of unacked chunks for us retransmit immediately. Inactive
/// providers are skipped: they never send a chunk, so they hold nothing to
/// retransmit — and they run no Retransmitter, so frames posted to their
/// control mailbox would just pile up for the life of the stream.
void broadcast_nack(rpc::Transport& transport, const TransferPlan& plan,
                    int seq, int volume, DataPlaneStats& stats) {
  const auto self = transport.local_node();
  const rpc::Frame frame(
      rpc::encode_nack(rpc::NackMsg{self, seq, volume}));
  for (rpc::NodeId node = 0; node <= plan.requester_node(); ++node) {
    if (node == self) continue;
    if (node < plan.n_devices && !plan.device_active(node)) continue;
    stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                               std::memory_order_relaxed);
    transport.send(ctrl_addr(node), frame);  // refcount share per peer
  }
  stats.nacks.fetch_add(1, std::memory_order_relaxed);
}

/// After a finite reliable run: keep servicing acks for our last chunks
/// until the outbox drains, the requester releases us (kShutdown), or the
/// transport closes. Bounded either way — unreachable receivers exhaust the
/// attempt budget and the entries are abandoned.
void drain_outbox(RxState& rx, Retransmitter& rtx) {
  RxChunk ignored;
  while (!rtx.idle()) {
    if (receive_frame(rx, ignored) == RxKind::kStop) return;
  }
}

/// Periodic kHeartbeat publisher (lease renewal) of one provider. Runs on
/// its own small thread so renewals keep flowing while the provider loop
/// blocks in a receive or a long compute — the lease answers "is the node
/// reachable", not "is it idle". Fire-and-forget like telemetry: a lost
/// heartbeat just shortens the lease margin, and a severed node's
/// heartbeats are exactly the ones that must go missing for the collector
/// to declare it dead. hb_seq restarts at 1 per (re)started loop, which the
/// collector's monotone gate reads as a new life.
class Heartbeater {
 public:
  Heartbeater(rpc::Transport& transport, rpc::NodeId to, int period_ms,
              std::int64_t clock_origin_us, DataPlaneStats& stats)
      : transport_(transport), to_(to), period_ms_(period_ms),
        clock_origin_us_(clock_origin_us), stats_(stats) {
    if (period_ms_ > 0 && to_ != rpc::kNilNode) {
      thread_ = std::thread([this] { loop(); });
    }
  }

  ~Heartbeater() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  Heartbeater(const Heartbeater&) = delete;
  Heartbeater& operator=(const Heartbeater&) = delete;

 private:
  void loop() {
    std::uint32_t seq = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      lock.unlock();
      rpc::HeartbeatMsg msg{transport_.local_node(), ++seq,
                            obs::now_us() - clock_origin_us_};
      rpc::Frame frame(rpc::encode_heartbeat(msg));
      stats_.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                                  std::memory_order_relaxed);
      obs::trace_instant(obs::Cat::kHeartbeatPub, -1, -1, -1,
                         static_cast<std::int64_t>(seq));
      transport_.send(rpc::Address{to_, rpc::kTelemetryMailbox},
                      std::move(frame));
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                   [this] { return stop_; });
    }
  }

  rpc::Transport& transport_;
  const rpc::NodeId to_;
  const int period_ms_;
  const std::int64_t clock_origin_us_;
  DataPlaneStats& stats_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// True when the chunk's rows are sane to blit into a destination of width
/// `w`, channels `c`, covering absolute rows `bounds`. Wire decoding only
/// proves the frame is self-consistent; a frame from a mismatched plan (or
/// a hostile loopback connection) can still claim rows far outside the
/// destination, which would write out of bounds. Because such a chunk
/// occupies counted rows/slots, silently dropping it would hang the run —
/// callers fail the image loudly instead.
bool chunk_fits(const rpc::ChunkView& view, const cnn::RowInterval& bounds,
                int w, int c) {
  // 64-bit sum: row_offset near INT32_MAX decodes fine, and a signed int
  // overflow here would wrap negative and let the hostile chunk through.
  return view.w == w && view.c == c && view.row_offset >= bounds.begin &&
         static_cast<std::int64_t>(view.row_offset) + view.h <= bounds.end;
}

/// Farthest ahead of the current image a stashed chunk may be. Legitimate
/// pipelines are bounded by ServeOptions::inflight (single digits); anything
/// beyond this is a mismatched or hostile peer trying to grow the stash
/// without bound.
constexpr int kMaxImagesAhead = 4096;

/// Most chunks that may wait for an epoch announcement. Legitimately in
/// flight at a cutover: at most the inflight window's worth of scatters
/// plus a few halo/gather bands — never thousands.
constexpr std::size_t kMaxPendingChunks = 4096;

[[noreturn]] void fail_geometry(const rpc::ChunkView& view) {
  throw Error("chunk geometry disagrees with the local transfer plan (seq " +
              std::to_string(view.seq) + ", volume " +
              std::to_string(view.volume) + ", epoch " +
              std::to_string(view.epoch) + ", rows [" +
              std::to_string(view.row_offset) + ", " +
              std::to_string(view.row_offset + view.h) +
              ")) — mismatched strategy or hostile peer");
}

[[noreturn]] void fail_starved(int node, int seq, int volume, int rounds) {
  throw Error("node " + std::to_string(node) + " starved waiting for chunks of"
              " image " + std::to_string(seq) + ", volume " +
              std::to_string(volume) + " (" + std::to_string(rounds) +
              " timeout rounds) — peer dead or link severed past recovery");
}

/// Blits a received chunk into `dst`. The zero-copy path reads the wire
/// bytes in place (one copy); the serial path first materializes the legacy
/// owning tensor and then blits it — the pre-change double copy, preserved
/// so the A/B baseline pays its true cost. Both count into bytes_copied.
void blit_chunk(const RxChunk& chunk, cnn::Tensor& dst, int dst_offset,
                DataPlaneMode mode, DataPlaneStats& stats) {
  const auto& v = chunk.view;
  const auto payload = static_cast<Bytes>(v.payload_bytes());
  if (mode == DataPlaneMode::kOverlapZeroCopy) {
    rpc::copy_rows_to(v, v.row_offset, v.row_offset + v.h, dst, dst_offset);
    stats.bytes_copied.fetch_add(payload, std::memory_order_relaxed);
    return;
  }
  const cnn::Tensor rows = v.to_tensor();
  blit_rows(rows, v.row_offset, v.row_offset, v.row_offset + v.h, dst,
            dst_offset);
  stats.bytes_copied.fetch_add(2 * payload, std::memory_order_relaxed);
}

/// Resizes `t` to (h, w, c) reusing its heap buffer (no zero fill — callers
/// overwrite every row; the transfer plan guarantees full coverage).
void reshape(cnn::Tensor& t, int h, int w, int c) {
  t.h = h;
  t.w = w;
  t.c = c;
  t.data.resize(static_cast<std::size_t>(h) * static_cast<std::size_t>(w) *
                static_cast<std::size_t>(c));
}

/// Zero-copy chunk post: encodes rows straight out of `src` into an arena
/// frame, stamps reliability handles, shares the frame with the outbox when
/// tracked, and hands it to the sender thread (provider) or the transport
/// (requester).
void post_rows(rpc::Transport& transport, const rpc::Address& to,
               rpc::MsgType type, int stream, int seq, int volume, int epoch,
               const cnn::Tensor& src, int src_offset, cnn::RowInterval rows,
               rpc::FrameArena& arena, DataPlaneStats& stats,
               Retransmitter* rtx, ChunkSender* sender) {
  obs::SpanScope span(obs::Cat::kHaloPost, seq, volume, epoch);
  rpc::NodeId from = rpc::kNilNode;
  std::uint32_t chunk_id = 0;
  if (rtx != nullptr) {
    from = transport.local_node();
    chunk_id = rtx->next_chunk_id(to.node);
  }
  rpc::Frame frame = arena.acquire();
  const std::size_t payload =
      rpc::encode_chunk_into(frame, type, seq, volume, from, chunk_id, epoch,
                             stream, src, src_offset, rows);
  span.set_arg(static_cast<std::int64_t>(payload));
  stats.messages.fetch_add(1, std::memory_order_relaxed);
  stats.bytes.fetch_add(static_cast<Bytes>(payload), std::memory_order_relaxed);
  stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                             std::memory_order_relaxed);
  stats.bytes_copied.fetch_add(static_cast<Bytes>(payload),
                               std::memory_order_relaxed);
  if (sender != nullptr) {
    // The sender thread registers tracked chunks right before the wire
    // write; tracking here would start the rto while the frame still sits
    // in the queue and turn backpressure into spurious retransmits.
    sender->post(to, std::move(frame), rtx, chunk_id);
  } else {
    if (rtx != nullptr) rtx->track(to, chunk_id, frame);
    transport.send(to, std::move(frame));
  }
}

/// One tenant stream's serving state on a provider: the epoch lane, the
/// model the lane runs, and the per-epoch halo-first schedules. The legacy
/// single-tenant loop is the degenerate case of exactly one lane (stream 0)
/// seeded at construction.
struct StreamLane {
  int stream = 0;
  int model_id = 0;
  const cnn::CnnModel* model = nullptr;
  const std::vector<cnn::ConvWeights>* weights = nullptr;
  EpochTable epochs;
  /// Halo-first schedules per epoch id (overlap mode, built on first use).
  std::map<int, std::vector<PartSchedule>> schedules;
};

/// Epoch bookkeeping and chunk admission of one provider. Every received
/// chunk passes through admit(): chunks of unknown lanes/epochs park in
/// `pending` until their announcement registers, known-epoch chunks are
/// validated against the plan of *their* image's epoch and either consumed,
/// stashed, or rejected loudly. Multi-tenant mode adds the global
/// seq -> owning-stream dispatch records the front door broadcasts.
struct ProviderState {
  int i;
  int n_images;
  bool multi = false;
  /// Multi mode: the model registry reconfigure `model_id`s index into.
  std::span<const TenantModel> fleet;
  /// Epoch lanes keyed by stream id. Lanes are only ever added (a closed
  /// stream's lane is a few plans, retire()d down to one; reclaiming the
  /// map entries themselves needs a close protocol — ROADMAP item).
  std::map<int, StreamLane> lanes;
  /// Multi mode: which stream owns each global fleet seq (kDispatch).
  std::map<int, rpc::DispatchMsg> owners;
  /// Chunks that arrived ahead of their (image, volume) slot. Seqs are
  /// global in multi mode, so one map serves every lane.
  std::map<std::pair<int, int>, std::vector<RxChunk>> stash;
  /// Chunks of lanes/epochs not announced to us yet.
  std::vector<RxChunk> pending;
  /// Images below this seq were voided by a membership change (kMembership):
  /// their late chunks are dropped silently, never a geometry failure — the
  /// requester re-dispatches the same inputs under fresh seqs.
  int cancel_floor = 0;
  /// Deferred lane evictions (multi mode): stream -> drained-below seq.
  std::map<int, int> evictions;

  StreamLane* lane_for(int stream) {
    auto it = lanes.find(stream);
    return it == lanes.end() ? nullptr : &it->second;
  }

  const std::vector<PartSchedule>& schedules_for(StreamLane& lane,
                                                 const EpochPlan& ep) {
    auto [it, inserted] = lane.schedules.try_emplace(ep.epoch);
    if (inserted) {
      const int n_volumes = ep.plan.num_volumes();
      it->second.reserve(static_cast<std::size_t>(n_volumes));
      for (int l = 0; l < n_volumes; ++l) {
        it->second.push_back(plan_part_schedule(ep.plan, l, i));
      }
    }
    return it->second;
  }

  /// Routes one received chunk relative to the current processing point
  /// (cur_stream, cur_seq, cur_vol; cur_stream < 0 when the loop is between
  /// images). Returns true exactly when the chunk is the one being waited
  /// on and `allow_consume` is set — it is then left in place for the
  /// caller to blit; everything else is moved into the park/stash queues or
  /// rejected loudly.
  bool admit(RxChunk& chunk, int cur_stream, int cur_seq, int cur_vol,
             bool allow_consume) {
    const auto& v = chunk.view;
    if (v.seq < cancel_floor) {
      // Voided by a membership change: the image's input was re-dispatched
      // under a fresh seq, so stragglers of its old life (a survivor's
      // retransmitted halo, a band computed before the announcement landed)
      // are dropped here — before any plan/epoch check, because the state
      // those checks would consult may itself be gone.
      obs::trace_instant(obs::Cat::kImageCancel, v.seq, v.volume, v.epoch);
      return false;
    }
    StreamLane* lane = lane_for(v.stream);
    if (lane != nullptr && v.epoch < lane->epochs.oldest()) {
      // Tagged with retired history: every image that epoch served is long
      // gathered, so this is a stale duplicate that slipped dedup or a
      // hostile peer.
      fail_geometry(v);
    }
    if (lane == nullptr || !lane->epochs.knows(v.epoch)) {
      // The lane's announcement is still in flight on this same mailbox
      // (under faults possibly *behind* a later epoch's — deliveries
      // reorder); park the chunk until it lands. Bounded: a peer tagging
      // chunks with streams/epochs nobody ever announces must not grow the
      // park queue (tensor payloads included) for the life of the stream.
      if (v.seq - cur_seq > kMaxImagesAhead ||
          pending.size() >= kMaxPendingChunks) {
        fail_geometry(v);
      }
      obs::trace_instant(obs::Cat::kParkChunk, v.seq, v.volume, v.epoch);
      pending.push_back(std::move(chunk));
      return false;
    }
    const EpochPlan& owner = lane->epochs.at(v.seq);
    if (v.epoch != owner.epoch) fail_geometry(v);  // stale/foreign epoch tag
    if (multi) {
      // A dispatch we already hold must agree on the seq's owning stream.
      auto it = owners.find(v.seq);
      if (it != owners.end() && it->second.stream != v.stream) {
        fail_geometry(v);
      }
    }
    // Chunks that can never be consumed would park in the stash for the
    // life of the stream; treat them as protocol violations.
    const bool off_plan =
        v.volume >= owner.plan.num_volumes() ||
        owner.plan.expected[static_cast<std::size_t>(v.volume)]
                           [static_cast<std::size_t>(i)] == 0 ||
        v.seq < cur_seq || (v.seq == cur_seq && v.volume < cur_vol) ||
        (n_images >= 0 && v.seq >= n_images) ||
        v.seq - cur_seq > kMaxImagesAhead;
    if (off_plan) fail_geometry(v);
    if (allow_consume && v.stream == cur_stream && v.seq == cur_seq &&
        v.volume == cur_vol) {
      return true;
    }
    stash[{v.seq, v.volume}].push_back(std::move(chunk));
    return false;
  }

  /// Registers an announced epoch on its stream's lane (creating the lane
  /// against fleet[model_id] on first sight of the stream) and re-admits
  /// parked chunks it unlocks. Returns true when the epoch serving the
  /// image currently being processed changed — the caller must restart it
  /// under the new plan. Announcements for *other* streams' lanes never
  /// restart the current image.
  bool register_epoch(const rpc::ReconfigureMsg& msg, int cur_stream,
                      int cur_seq, int cur_vol) {
    obs::trace_instant(obs::Cat::kEpochRegister, msg.from_seq, -1, msg.epoch);
    StreamLane* lane = lane_for(msg.stream);
    bool remapped = false;
    if (lane == nullptr) {
      DE_REQUIRE(multi,
                 "reconfigure names an unknown stream on a single-tenant "
                 "provider");
      DE_REQUIRE(static_cast<std::size_t>(msg.model_id) < fleet.size(),
                 "reconfigure names an unknown tenant model");
      const TenantModel& tenant = fleet[static_cast<std::size_t>(msg.model_id)];
      lanes.emplace(msg.stream,
                    StreamLane{msg.stream, msg.model_id, tenant.model,
                               tenant.weights,
                               EpochTable(epoch_from_reconfigure(
                                   msg, *tenant.model)),
                               {}});
    } else {
      const bool tracking = msg.stream == cur_stream;
      const int before = tracking ? lane->epochs.at(cur_seq).epoch : 0;
      lane->epochs.add(epoch_from_reconfigure(msg, *lane->model));
      remapped = tracking && lane->epochs.at(cur_seq).epoch != before;
    }
    // Re-admit parked chunks whose lane/epoch is now known. Consumption is
    // disabled: anything for the current image under a *new* epoch belongs
    // to the restart path, which re-pulls the stash from volume 0.
    auto parked = std::move(pending);
    pending.clear();
    for (auto& chunk : parked) {
      admit(chunk, cur_stream, cur_seq, remapped ? 0 : cur_vol,
            /*allow_consume=*/false);
    }
    return remapped;
  }

  /// Records a kDispatch owner binding (multi mode; a single-tenant
  /// provider receiving one is talking to a mismatched or hostile door).
  void register_dispatch(const rpc::DispatchMsg& msg, int cur_seq) {
    DE_REQUIRE(multi, "dispatch announcement on a single-tenant provider");
    if (msg.seq < cur_seq) return;  // stale repeat of a finished image
    if (msg.seq - cur_seq > kMaxImagesAhead ||
        owners.size() >= kMaxPendingChunks) {
      throw Error("dispatch horizon overflow (seq " + std::to_string(msg.seq) +
                  " while processing " + std::to_string(cur_seq) +
                  ") — runaway or hostile front door");
    }
    auto [it, inserted] = owners.emplace(msg.seq, msg);
    DE_REQUIRE(inserted || (it->second.stream == msg.stream &&
                            it->second.epoch == msg.epoch),
               "conflicting dispatch announcements for one image");
  }

  /// Applies a membership announcement: joiners' chunk-id incarnations are
  /// adopted (the dedup window fast-forwards for peers; our own outgoing
  /// ids jump when *we* are the joiner), retransmissions to the dead are
  /// cancelled (fast-fail — no point burning their rto/attempt schedule),
  /// and everything below `cancel_below` is voided: stashed and parked
  /// chunks dropped, dispatch records erased. Returns true when the image
  /// at `cur_seq` is among the voided — the caller must abandon it and jump
  /// its cursor to the cancel floor.
  bool register_membership(const rpc::MembershipMsg& msg, RxState& rx,
                           Retransmitter* rtx, int cur_seq) {
    const auto self = rx.transport.local_node();
    obs::trace_instant(obs::Cat::kMembershipSwap, msg.cancel_below,
                       static_cast<int>(msg.died.size()), -1,
                       static_cast<std::int64_t>(msg.joined.size()));
    for (const auto& join : msg.joined) {
      if (join.node == self) {
        // Our own adoption: restart outgoing ids above the announced base
        // (idempotent — set_id_base never moves backwards, so a
        // retransmitted membership frame re-applies harmlessly).
        if (rtx != nullptr) rtx->set_id_base(join.id_base);
      } else {
        rx.dedup.assume(join.node, join.id_base);
      }
    }
    if (rtx != nullptr) {
      for (const auto node : msg.died) rtx->cancel_to(node);
    }
    if (msg.cancel_below > cancel_floor) {
      cancel_floor = msg.cancel_below;
      stash.erase(stash.begin(), stash.lower_bound({cancel_floor, 0}));
      std::erase_if(pending, [this](const RxChunk& c) {
        return c.view.seq < cancel_floor;
      });
      owners.erase(owners.begin(), owners.lower_bound(cancel_floor));
    }
    return cur_seq < cancel_floor;
  }

  /// Records a lane eviction (multi mode); applied by sweep_evictions once
  /// the global cursor passes the drained watermark.
  void register_eviction(const rpc::LaneEvictMsg& msg) {
    DE_REQUIRE(multi, "lane eviction on a single-tenant provider");
    auto [it, inserted] = evictions.emplace(msg.stream, msg.below_seq);
    if (!inserted) it->second = std::max(it->second, msg.below_seq);
  }

  /// Drops the epoch lanes (history, schedules, weights binding) of closed
  /// streams whose eviction watermark the cursor has passed. Per-sender
  /// FIFO from the front door means no later frame can legitimately revive
  /// an evicted lane; a straggler would park in `pending` like any chunk of
  /// an unannounced stream.
  void sweep_evictions(int cur_seq, DataPlaneStats& stats) {
    for (auto it = evictions.begin(); it != evictions.end();) {
      if (cur_seq >= it->second) {
        if (lanes.erase(it->first) > 0) {
          stats.lanes_evicted.fetch_add(1, std::memory_order_relaxed);
          obs::trace_instant(obs::Cat::kLaneEvictCat, it->second, -1, -1,
                             it->first);
        }
        it = evictions.erase(it);
      } else {
        ++it;
      }
    }
  }
};

}  // namespace

void post_chunk(rpc::Transport& transport, const rpc::Address& to,
                rpc::ChunkMsg msg, DataPlaneStats& stats, Retransmitter* rtx) {
  const auto payload =
      static_cast<Bytes>(msg.rows.size()) * static_cast<Bytes>(sizeof(float));
  stats.messages.fetch_add(1, std::memory_order_relaxed);
  stats.bytes.fetch_add(payload, std::memory_order_relaxed);
  stats.bytes_copied.fetch_add(payload, std::memory_order_relaxed);  // encode
  if (rtx != nullptr) {
    msg.from_node = transport.local_node();
    msg.chunk_id = rtx->next_chunk_id(to.node);
    rpc::Frame frame(rpc::encode_chunk(msg));
    stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                               std::memory_order_relaxed);
    rtx->track(to, msg.chunk_id, frame);  // refcount share, not a copy
    transport.send(to, std::move(frame));
    return;
  }
  rpc::Frame frame(rpc::encode_chunk(msg));
  stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                             std::memory_order_relaxed);
  transport.send(to, std::move(frame));
}

void post_reconfigure(rpc::Transport& transport, const rpc::Address& to,
                      rpc::ReconfigureMsg msg, DataPlaneStats& stats,
                      Retransmitter* rtx) {
  if (rtx != nullptr) {
    msg.from_node = transport.local_node();
    msg.chunk_id = rtx->next_chunk_id(to.node);
  }
  rpc::Frame frame(rpc::encode_reconfigure(msg));
  stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                             std::memory_order_relaxed);
  if (rtx != nullptr) rtx->track(to, msg.chunk_id, frame);
  transport.send(to, std::move(frame));
}

namespace {

/// Posts a kDispatch announcement, tracked exactly like a reconfigure.
void post_dispatch(rpc::Transport& transport, const rpc::Address& to,
                   rpc::DispatchMsg msg, DataPlaneStats& stats,
                   Retransmitter* rtx) {
  if (rtx != nullptr) {
    msg.from_node = transport.local_node();
    msg.chunk_id = rtx->next_chunk_id(to.node);
  }
  rpc::Frame frame(rpc::encode_dispatch(msg));
  stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                             std::memory_order_relaxed);
  if (rtx != nullptr) rtx->track(to, msg.chunk_id, frame);
  transport.send(to, std::move(frame));
}

enum class ImageOutcome { kDone, kRestart, kStop, kCancelled };

/// Executes image `seq` on provider `i` under the epoch of `lane` (the
/// stream that owns the image) currently serving it. kRestart means an
/// epoch announcement re-mapped this image before any of it was consumed or
/// computed — rerun under the new plan.
ImageOutcome process_image(
    ProviderState& state, RxState& rx, rpc::Transport& transport,
    StreamLane& lane, int seq, DataPlaneStats& stats,
    const ReliabilityOptions& reliability, cnn::ExecContext& exec_ctx,
    DataPlaneMode mode, rpc::FrameArena& arena,
    std::optional<ChunkSender>& sender, Retransmitter* rtx,
    cnn::Tensor& crop_buf, cnn::Tensor (&out_bufs)[2], int& cur_buf,
    double& compute_ms) {
  const int i = state.i;
  const cnn::CnnModel& model = *lane.model;
  const std::vector<cnn::ConvWeights>& weights = *lane.weights;
  const bool overlap = mode == DataPlaneMode::kOverlapZeroCopy;
  const EpochPlan& ep = lane.epochs.at(seq);  // deque-backed: stays valid
  const TransferPlan& plan = ep.plan;
  const sim::RawStrategy& strategy = ep.strategy;
  const int n_volumes = plan.num_volumes();

  cnn::Tensor legacy_prev;           // serial mode's previous-part output
  const cnn::Tensor* prev_out = nullptr;
  cnn::RowInterval prev_rows{0, 0};  // which absolute rows prev_out holds
  bool touched = false;  // consumed a chunk or produced rows for this image

  for (int l = 0; l < n_volumes; ++l) {
    const auto volume = strategy.volumes[static_cast<std::size_t>(l)];
    const auto layers = cnn::volume_layers(model, volume);
    const auto part =
        plan.parts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
    const auto need =
        plan.needs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
    const auto weights_span =
        std::span<const cnn::ConvWeights>(weights).subspan(
            static_cast<std::size_t>(volume.first),
            static_cast<std::size_t>(volume.size()));

    if (part.empty()) {
      prev_out = nullptr;
      prev_rows = part;
      continue;
    }

    const auto& first_layer = model.layer(volume.first);
    cnn::Tensor legacy_crop;
    if (overlap) {
      reshape(crop_buf, need.size(), first_layer.in_w, first_layer.in_c);
    } else {
      legacy_crop =
          cnn::Tensor(need.size(), first_layer.in_w, first_layer.in_c);
    }
    cnn::Tensor& crop = overlap ? crop_buf : legacy_crop;

    // Assemble phase: local blit + remote chunk waits, one span per volume.
    // std::optional so the span closes before the compute span opens.
    std::optional<obs::SpanScope> assemble;
    if (obs::trace_enabled()) {
      assemble.emplace(obs::Cat::kAssemble, seq, l, ep.epoch);
    }

    // Local contribution from my previous part (never crossed the wire,
    // so it counts toward neither halo bytes nor halo-byte copies).
    if (l > 0 && prev_out != nullptr && !prev_rows.empty()) {
      const auto own = need.intersect(prev_rows);
      if (!own.empty()) {
        blit_rows(*prev_out, prev_rows.begin, own.begin, own.end, crop,
                  need.begin);
      }
    }
    // Remote chunks (may arrive interleaved with later slots).
    int remaining =
        plan.expected[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
    if (auto it = state.stash.find({seq, l}); it != state.stash.end()) {
      for (auto& chunk : it->second) {
        // Stashed tags were validated at admission, but a later epoch may
        // have re-mapped this image since; a stale tag here means the
        // requester swapped into already-scattered images.
        if (chunk.view.epoch != ep.epoch) fail_geometry(chunk.view);
        if (!chunk_fits(chunk.view, need, crop.w, crop.c)) {
          fail_geometry(chunk.view);
        }
        blit_chunk(chunk, crop, need.begin, mode, stats);
        touched = true;
        --remaining;
      }
      state.stash.erase(it);
    }
    int timeout_rounds = 0;
    while (remaining > 0) {
      RxChunk chunk;
      rpc::ReconfigureMsg rmsg;
      rpc::DispatchMsg dmsg;
      rpc::MembershipMsg mmsg;
      rpc::LaneEvictMsg emsg;
      switch (receive_frame(rx, chunk, &rmsg, state.multi ? &dmsg : nullptr,
                            &mmsg, state.multi ? &emsg : nullptr)) {
        case RxKind::kStop:
          return ImageOutcome::kStop;  // shutdown: abandon the image
        case RxKind::kSkip:
          continue;
        case RxKind::kTimeout:
          stats.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
          obs::trace_instant(obs::Cat::kRecvTimeout, seq, l, ep.epoch,
                             timeout_rounds);
          broadcast_nack(transport, plan, seq, l, stats);
          if (++timeout_rounds > reliability.max_recv_timeouts) {
            fail_starved(i, seq, l, timeout_rounds);
          }
          continue;
        case RxKind::kDispatch:
          state.register_dispatch(dmsg, seq);
          continue;
        case RxKind::kMembership:
          if (state.register_membership(mmsg, rx, rtx, seq)) {
            // This image is among the voided: its owner (possibly us, more
            // likely a dead peer's halo half) can never complete it, and
            // the requester already re-dispatched its input under a fresh
            // seq. Abandoning mid-image is safe — nothing of a cancelled
            // image reaches the output (the requester drops its late
            // gather chunks), so partial work cannot corrupt anything.
            obs::trace_instant(obs::Cat::kImageCancel, seq, l, ep.epoch);
            stats.images_cancelled.fetch_add(1, std::memory_order_relaxed);
            return ImageOutcome::kCancelled;
          }
          continue;
        case RxKind::kLaneEvict:
          state.register_eviction(emsg);
          continue;
        case RxKind::kReconfig:
          if (state.register_epoch(rmsg, lane.stream, seq, l)) {
            // This image now belongs to a newer epoch. Nothing of it can
            // have been consumed or computed yet (the requester announces
            // before any new-epoch traffic, and no old-epoch traffic for
            // it was ever produced) — anything else is a protocol breach.
            DE_REQUIRE(!touched,
                       "epoch re-mapped an image already in progress — "
                       "reconfigure raced past its cutover boundary");
            obs::trace_instant(obs::Cat::kImageRestart, seq, l, rmsg.epoch);
            return ImageOutcome::kRestart;
          }
          continue;
        case RxKind::kChunk:
          break;
      }
      timeout_rounds = 0;
      if (!state.admit(chunk, lane.stream, seq, l, /*allow_consume=*/true)) {
        continue;
      }
      if (!chunk_fits(chunk.view, need, crop.w, crop.c)) {
        fail_geometry(chunk.view);
      }
      blit_chunk(chunk, crop, need.begin, mode, stats);
      touched = true;
      --remaining;
    }

    assemble.reset();  // inputs complete; the rest of the volume is compute

    double t_compute = 0;
    const auto t0 = std::chrono::steady_clock::now();
    if (overlap) {
      // Halo-first banded compute: boundary bands land in `out` first and
      // their chunks ship through the sender thread while the interior
      // bands still run — the transport writes overlap the SSE kernels.
      cnn::Tensor& out = out_bufs[cur_buf];
      reshape(out, part.size(), layers.back().out_w(), layers.back().out_c);
      const auto& sched =
          state.schedules_for(lane, ep)[static_cast<std::size_t>(l)];
      std::size_t next_send = 0;
      for (std::size_t b = 0; b < sched.bands.size(); ++b) {
        {
          obs::SpanScope band(obs::Cat::kComputeBand, seq, l, ep.epoch,
                              static_cast<std::int64_t>(b));
          cnn::volume_forward_rows_into(layers, crop, need.begin,
                                        sched.bands[b], weights_span, exec_ctx,
                                        out, part.begin);
        }
        for (; next_send < sched.sends.size() &&
               sched.sends[next_send].ready_after_band <=
                   static_cast<int>(b);
             ++next_send) {
          const auto& send = sched.sends[next_send];
          const bool gather = l + 1 == n_volumes;
          post_rows(transport, data_addr(send.to),
                    gather ? rpc::MsgType::kGather : rpc::MsgType::kHaloRows,
                    lane.stream, seq, gather ? n_volumes : l + 1, ep.epoch,
                    out, part.begin, send.rows, arena, stats, rtx, &*sender);
        }
      }
      prev_out = &out;
      cur_buf ^= 1;
    } else {
      // Serial baseline: whole-part compute, then copying sends from this
      // thread (slice temporary + encode copy), exactly the PR-3 path.
      const cnn::Tensor legacy_cur = crop;
      cnn::Tensor out;
      {
        obs::SpanScope comp(obs::Cat::kCompute, seq, l, ep.epoch);
        out = cnn::volume_forward_rows(layers, legacy_cur, need.begin, part,
                                       weights_span, exec_ctx);
      }
      if (l + 1 < n_volumes) {
        for (int k = 0; k < plan.n_devices; ++k) {
          if (k == i) continue;
          const auto& kneed = plan.needs[static_cast<std::size_t>(l + 1)]
                                        [static_cast<std::size_t>(k)];
          const auto chunk = kneed.intersect(part);
          if (chunk.empty()) continue;
          stats.bytes_copied.fetch_add(  // the sliced temporary
              static_cast<Bytes>(chunk.size()) * out.w * out.c * 4,
              std::memory_order_relaxed);
          post_chunk(transport, data_addr(k),
                     rpc::ChunkMsg{rpc::MsgType::kHaloRows, seq, l + 1,
                                   chunk.begin, rpc::kNilNode, 0, ep.epoch,
                                   lane.stream,
                                   slice_rows(out, part.begin, chunk.begin,
                                              chunk.end)},
                     stats, rtx);
        }
      } else {
        // Final volume: `out` is not needed locally again, so move it.
        post_chunk(transport, data_addr(plan.requester_node()),
                   rpc::ChunkMsg{rpc::MsgType::kGather, seq, n_volumes,
                                 part.begin, rpc::kNilNode, 0, ep.epoch,
                                 lane.stream, std::move(out)},
                   stats, rtx);
      }
      legacy_prev = std::move(out);
      prev_out = &legacy_prev;
    }
    t_compute = std::chrono::duration_cast<std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    compute_ms += t_compute * 1e3;
    touched = true;
    prev_rows = part;
  }
  return ImageOutcome::kDone;
}

}  // namespace

void provider_loop(rpc::Transport& transport, int i, const cnn::CnnModel& model,
                   const sim::RawStrategy& strategy,
                   const std::vector<cnn::ConvWeights>& weights,
                   const TransferPlan& plan, int n_images,
                   DataPlaneStats& stats,
                   const ReliabilityOptions& reliability,
                   const cnn::ExecContext& exec, DataPlaneMode mode,
                   const TelemetryHooks& telemetry) {
  const bool overlap = mode == DataPlaneMode::kOverlapZeroCopy;
  ChunkDedup dedup;
  RxState rx{transport, reliability, stats, dedup};
  ProviderState state{i, n_images, /*multi=*/false, {}, {}, {}, {}, {}};
  state.lanes.emplace(
      0, StreamLane{0, 0, &model, &weights,
                    EpochTable(EpochPlan{0, 0, strategy, plan}), {}});
  StreamLane& lane = state.lanes.at(0);  // map node: stable address

  std::unique_ptr<Retransmitter> rtx;
  if (reliability.enabled) {
    rtx = std::make_unique<Retransmitter>(transport, reliability, stats);
  }

  // Lease renewals to the membership collector (off unless configured).
  Heartbeater heartbeat(transport,
                        telemetry.heartbeat_to != rpc::kNilNode
                            ? telemetry.heartbeat_to
                            : plan.requester_node(),
                        telemetry.heartbeat_ms, telemetry.clock_origin_us,
                        stats);

  // Pack each conv layer's weights once for the run, not once per image.
  cnn::ExecCache exec_cache;
  cnn::ExecContext exec_ctx = exec;
  exec_ctx.cache = &exec_cache;

  // Per-run overlap state: recycled frame buffers, the dedicated sender
  // thread, and reusable crop/part tensors — steady-state images allocate
  // nothing on the chunk path.
  rpc::FrameArena arena;
  std::optional<ChunkSender> sender;
  if (overlap) sender.emplace(transport);
  cnn::Tensor crop_buf;
  cnn::Tensor out_bufs[2];
  int cur_buf = 0;

  // The loop below returns from several places (stream shutdown arrives in
  // the middle of an image); the sender must drain and the arena's
  // allocation count must fold into the shared stats on every path.
  struct Cleanup {
    std::optional<ChunkSender>& sender;
    rpc::FrameArena& arena;
    DataPlaneStats& stats;
    ~Cleanup() {
      if (sender) sender->drain();
      stats.frame_allocs.fetch_add(arena.stats().allocated,
                                   std::memory_order_relaxed);
    }
  } cleanup{sender, arena, stats};

  // Telemetry window accumulators.
  auto window_start = std::chrono::steady_clock::now();
  double window_compute_ms = 0;
  int window_images = 0;

  int seq = 0;
  while (n_images < 0 || seq < n_images) {
    // Nothing before `seq` can be referenced again: retire superseded
    // epoch history (and its schedules) so unbounded streams with many
    // reconfigurations do not accrete plans. No EpochPlan reference is
    // held across this point.
    lane.epochs.retire(seq);
    lane.schedules.erase(lane.schedules.begin(),
                         lane.schedules.lower_bound(lane.epochs.oldest()));

    // Resolve the epoch serving `seq`; while this device is idle under it,
    // jump to the next known epoch's first image, or — streaming runs —
    // listen for the announcement that re-activates us (or the shutdown).
    if (!lane.epochs.at(seq).plan.device_active(i)) {
      if (const EpochPlan* next = lane.epochs.after(seq)) {
        seq = next->from_seq;
        continue;
      }
      if (n_images >= 0) return;  // finite run: nothing will ever change
      RxChunk chunk;
      rpc::ReconfigureMsg rmsg;
      rpc::MembershipMsg mmsg;
      switch (receive_frame(rx, chunk, &rmsg, nullptr, &mmsg)) {
        case RxKind::kStop:
          return;
        case RxKind::kSkip:
        case RxKind::kTimeout:
          // Timeouts on an idle device are expected, not starvation.
          continue;
        case RxKind::kReconfig:
          state.register_epoch(rmsg, lane.stream, seq, 0);
          continue;
        case RxKind::kMembership:
          state.register_membership(mmsg, rx, rtx.get(), seq);
          seq = std::max(seq, state.cancel_floor);
          continue;
        case RxKind::kDispatch:   // unreachable: dispatch ptr not passed
        case RxKind::kLaneEvict:  // unreachable: lane-evict ptr not passed
        case RxKind::kChunk:
          state.admit(chunk, lane.stream, seq, 0, /*allow_consume=*/false);
          continue;
      }
      continue;
    }

    double compute_ms = 0;
    switch (process_image(state, rx, transport, lane, seq, stats,
                          reliability, exec_ctx, mode, arena, sender,
                          rtx.get(), crop_buf, out_bufs, cur_buf,
                          compute_ms)) {
      case ImageOutcome::kStop:
        return;
      case ImageOutcome::kRestart:
        continue;  // same seq, new epoch
      case ImageOutcome::kCancelled:
        seq = state.cancel_floor;  // voided: resume at the re-dispatch point
        continue;
      case ImageOutcome::kDone:
        break;
    }
    window_compute_ms += compute_ms;
    ++window_images;
    ++seq;

    if (telemetry.every_images > 0 &&
        window_images >= telemetry.every_images) {
      const auto now = std::chrono::steady_clock::now();
      rpc::TelemetryMsg report;
      report.from_node = i;
      report.window_s =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              now - window_start)
              .count();
      report.compute_ms = window_compute_ms / window_images;
      report.images = window_images;
      if (telemetry.links != nullptr) {
        report.links = telemetry.links->sample_link_rates();
      }
      // Node-local steady clock (wire v4): lets the collector estimate this
      // node's clock offset when merging traces (src/obs/trace_export.hpp).
      report.steady_now_us = obs::now_us() - telemetry.clock_origin_us;
      obs::trace_instant(obs::Cat::kTelemetryPub, seq, -1, -1, window_images);
      rpc::Frame frame(rpc::encode_telemetry(report));
      stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                                 std::memory_order_relaxed);
      // Fire-and-forget: a lost report just widens the next window. The
      // requester's node id is the same under every epoch (device count is
      // fixed for the life of a stream).
      transport.send(rpc::Address{plan.requester_node(), rpc::kTelemetryMailbox},
                     std::move(frame));
      window_start = now;
      window_compute_ms = 0;
      window_images = 0;
    }
  }

  // Finite reliable run: our final gathers may still be unacked; keep the
  // link serviced until they are (or the budget runs out). The sender must
  // have handed the frames over first (its queue is our side of the story).
  if (sender) sender->drain();
  if (rtx != nullptr && n_images >= 0) drain_outbox(rx, *rtx);
}

void provider_loop_multi(rpc::Transport& transport, int i,
                         std::span<const TenantModel> fleet,
                         DataPlaneStats& stats,
                         const ReliabilityOptions& reliability,
                         const cnn::ExecContext& exec, DataPlaneMode mode,
                         const TelemetryHooks& telemetry) {
  const bool overlap = mode == DataPlaneMode::kOverlapZeroCopy;
  ChunkDedup dedup;
  RxState rx{transport, reliability, stats, dedup};
  ProviderState state{i, /*n_images=*/-1, /*multi=*/true, fleet,
                      {}, {}, {}, {}};

  std::unique_ptr<Retransmitter> rtx;
  if (reliability.enabled) {
    rtx = std::make_unique<Retransmitter>(transport, reliability, stats);
  }

  // Lease renewals to the front door. The multi loop has no seed plan to
  // derive the collector node from, so it must be given explicitly.
  DE_REQUIRE(telemetry.heartbeat_ms <= 0 ||
                 telemetry.heartbeat_to != rpc::kNilNode,
             "multi-tenant heartbeats need an explicit collector node");
  Heartbeater heartbeat(transport, telemetry.heartbeat_to,
                        telemetry.heartbeat_ms, telemetry.clock_origin_us,
                        stats);

  // One packed-weight cache per tenant model: interleaved streams of
  // different models each pay the packing cost once per run, not per image.
  std::vector<cnn::ExecCache> caches(fleet.size());
  cnn::ExecContext exec_ctx = exec;

  rpc::FrameArena arena;
  std::optional<ChunkSender> sender;
  if (overlap) sender.emplace(transport);
  cnn::Tensor crop_buf;
  cnn::Tensor out_bufs[2];
  int cur_buf = 0;

  struct Cleanup {
    std::optional<ChunkSender>& sender;
    rpc::FrameArena& arena;
    DataPlaneStats& stats;
    ~Cleanup() {
      if (sender) sender->drain();
      stats.frame_allocs.fetch_add(arena.stats().allocated,
                                   std::memory_order_relaxed);
    }
  } cleanup{sender, arena, stats};

  auto window_start = std::chrono::steady_clock::now();
  double window_compute_ms = 0;
  int window_images = 0;

  int seq = 0;  // global fleet sequence, interleaved across streams
  for (;;) {
    // Retire history nothing before `seq` can reference again: finished
    // dispatch records and every lane's superseded epochs + schedules.
    // (Lane map entries themselves live for the run — see ProviderState.)
    state.owners.erase(state.owners.begin(), state.owners.lower_bound(seq));
    state.sweep_evictions(seq, stats);
    for (auto& [id, l] : state.lanes) {
      l.epochs.retire(seq);
      l.schedules.erase(l.schedules.begin(),
                        l.schedules.lower_bound(l.epochs.oldest()));
    }

    // Resolve which stream owns `seq`. Until its dispatch (and the lane
    // epoch it names) has been announced, block on the mailbox — the door
    // tracks both announcements, so they arrive or the stream ends.
    const auto own = state.owners.find(seq);
    StreamLane* lane =
        own == state.owners.end() ? nullptr : state.lane_for(own->second.stream);
    if (lane == nullptr || !lane->epochs.knows(own->second.epoch)) {
      RxChunk chunk;
      rpc::ReconfigureMsg rmsg;
      rpc::DispatchMsg dmsg;
      rpc::MembershipMsg mmsg;
      rpc::LaneEvictMsg emsg;
      switch (receive_frame(rx, chunk, &rmsg, &dmsg, &mmsg, &emsg)) {
        case RxKind::kStop:
          return;
        case RxKind::kSkip:
        case RxKind::kTimeout:
          // Waiting for a dispatch is idle time, not starvation.
          continue;
        case RxKind::kReconfig:
          state.register_epoch(rmsg, /*cur_stream=*/-1, seq, 0);
          continue;
        case RxKind::kDispatch:
          state.register_dispatch(dmsg, seq);
          continue;
        case RxKind::kMembership:
          state.register_membership(mmsg, rx, rtx.get(), seq);
          seq = std::max(seq, state.cancel_floor);
          continue;
        case RxKind::kLaneEvict:
          state.register_eviction(emsg);
          continue;
        case RxKind::kChunk:
          state.admit(chunk, /*cur_stream=*/-1, seq, 0,
                      /*allow_consume=*/false);
          continue;
      }
      continue;
    }

    const EpochPlan& ep = lane->epochs.at(seq);
    DE_REQUIRE(ep.epoch == own->second.epoch,
               "dispatch epoch disagrees with the announced lane history");
    if (!ep.plan.device_active(i)) {
      // Inactive for this image under its owner's plan; the dispatch
      // record is what lets us skip it without waiting for chunks.
      ++seq;
      continue;
    }

    exec_ctx.cache = &caches[static_cast<std::size_t>(lane->model_id)];
    double compute_ms = 0;
    switch (process_image(state, rx, transport, *lane, seq, stats,
                          reliability, exec_ctx, mode, arena, sender,
                          rtx.get(), crop_buf, out_bufs, cur_buf,
                          compute_ms)) {
      case ImageOutcome::kStop:
        return;
      case ImageOutcome::kRestart:
        // The door pins every dispatched image to its epoch (per-stream
        // swaps take effect at the next *undispatched* global seq), so a
        // re-map of an in-flight image is a front-door protocol breach.
        DE_REQUIRE(false, "epoch re-mapped a dispatched image — the front "
                          "door swapped behind its own dispatch");
        continue;
      case ImageOutcome::kCancelled:
        seq = state.cancel_floor;  // voided: resume at the re-dispatch point
        continue;
      case ImageOutcome::kDone:
        break;
    }
    window_compute_ms += compute_ms;
    ++window_images;
    ++seq;

    if (telemetry.every_images > 0 &&
        window_images >= telemetry.every_images) {
      const auto now = std::chrono::steady_clock::now();
      rpc::TelemetryMsg report;
      report.from_node = i;
      report.window_s =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              now - window_start)
              .count();
      report.compute_ms = window_compute_ms / window_images;
      report.images = window_images;
      if (telemetry.links != nullptr) {
        report.links = telemetry.links->sample_link_rates();
      }
      report.steady_now_us = obs::now_us() - telemetry.clock_origin_us;
      obs::trace_instant(obs::Cat::kTelemetryPub, seq, -1, -1, window_images);
      rpc::Frame frame(rpc::encode_telemetry(report));
      stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                                 std::memory_order_relaxed);
      // The requester node id is plan-invariant (device count is fixed for
      // the life of the fleet), so any lane's current plan works here.
      transport.send(
          rpc::Address{ep.plan.requester_node(), rpc::kTelemetryMailbox},
          std::move(frame));
      window_start = now;
      window_compute_ms = 0;
      window_images = 0;
    }
  }
}

int push_epoch(RequesterContext& ctx, const cnn::CnnModel& model,
               const sim::RawStrategy& strategy, int from_seq) {
  EpochPlan next;
  next.epoch = ctx.epochs.latest() + 1;
  next.from_seq = from_seq;
  next.strategy = strategy;
  next.plan = build_transfer_plan(model, strategy,
                                  ctx.epochs.latest_plan().plan.n_devices);
  rpc::ReconfigureMsg msg = reconfigure_from_epoch(next);
  const int n_devices = next.plan.n_devices;
  const int epoch = next.epoch;
  obs::trace_instant(obs::Cat::kEpochPush, from_seq, -1, epoch);
  ctx.epochs.add(std::move(next));
  // Announce to every provider — the idle ones too: an epoch may activate
  // a device the previous one never used.
  for (int k = 0; k < n_devices; ++k) {
    post_reconfigure(ctx.transport, data_addr(k), msg, ctx.stats, ctx.rtx);
  }
  return epoch;
}

int push_stream_epoch(RequesterContext& ctx, int stream, int model_id,
                      const cnn::CnnModel& model,
                      const sim::RawStrategy& strategy, int from_seq) {
  DE_REQUIRE(ctx.multi, "push_stream_epoch on a single-tenant context");
  DE_REQUIRE(model_id >= 0, "tenant model ids are non-negative");
  EpochPlan next;
  next.epoch = ctx.next_epoch++;  // global allocation: lanes never share ids
  next.from_seq = from_seq;
  next.strategy = strategy;
  next.plan = build_transfer_plan(model, strategy, ctx.n_devices);
  rpc::ReconfigureMsg msg = reconfigure_from_epoch(next);
  msg.stream = stream;
  msg.model_id = model_id;
  const int epoch = next.epoch;
  obs::trace_instant(obs::Cat::kEpochPush, from_seq, -1, epoch);
  if (auto it = ctx.lanes.find(stream); it != ctx.lanes.end()) {
    it->second.add(std::move(next));
  } else {
    ctx.lanes.emplace(stream, EpochTable(std::move(next)));
  }
  // Announce to every provider — the idle ones too — before any traffic of
  // the new regime, exactly like the single-tenant push_epoch.
  for (int k = 0; k < ctx.n_devices; ++k) {
    post_reconfigure(ctx.transport, data_addr(k), msg, ctx.stats, ctx.rtx);
  }
  return epoch;
}

void dispatch_image(RequesterContext& ctx, int stream, int seq) {
  DE_REQUIRE(ctx.multi, "dispatch_image on a single-tenant context");
  const auto lane = ctx.lanes.find(stream);
  DE_REQUIRE(lane != ctx.lanes.end(),
             "dispatch for a stream with no epoch lane");
  const EpochPlan& ep = lane->second.at(seq);
  DE_REQUIRE(ctx.owner.emplace(seq, stream).second,
             "global seq already dispatched");
  const rpc::DispatchMsg msg{rpc::kNilNode, 0, stream, seq, ep.epoch};
  for (int k = 0; k < ctx.n_devices; ++k) {
    post_dispatch(ctx.transport, data_addr(k), msg, ctx.stats, ctx.rtx);
  }
}

void retire_below(RequesterContext& ctx, int watermark) {
  if (!ctx.multi) {
    ctx.epochs.retire(watermark);
    return;
  }
  for (auto& [stream, lane] : ctx.lanes) lane.retire(watermark);
  ctx.owner.erase(ctx.owner.begin(), ctx.owner.lower_bound(watermark));
}

void post_membership(RequesterContext& ctx, rpc::NodeId to,
                     rpc::MembershipMsg msg) {
  if (ctx.rtx != nullptr) {
    msg.from_node = ctx.transport.local_node();
    msg.chunk_id = ctx.rtx->next_chunk_id(to);
  }
  rpc::Frame frame(rpc::encode_membership(msg));
  ctx.stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                                 std::memory_order_relaxed);
  if (ctx.rtx != nullptr) ctx.rtx->track(data_addr(to), msg.chunk_id, frame);
  ctx.transport.send(data_addr(to), std::move(frame));
}

void post_lane_evict(RequesterContext& ctx, rpc::NodeId to,
                     rpc::LaneEvictMsg msg) {
  if (ctx.rtx != nullptr) {
    msg.from_node = ctx.transport.local_node();
    msg.chunk_id = ctx.rtx->next_chunk_id(to);
  }
  rpc::Frame frame(rpc::encode_lane_evict(msg));
  ctx.stats.wire_bytes.fetch_add(static_cast<Bytes>(frame.size()),
                                 std::memory_order_relaxed);
  if (ctx.rtx != nullptr) ctx.rtx->track(data_addr(to), msg.chunk_id, frame);
  ctx.transport.send(data_addr(to), std::move(frame));
}

std::size_t apply_membership_local(RequesterContext& ctx,
                                   const rpc::MembershipMsg& msg) {
  std::size_t cancelled = 0;
  if (ctx.rtx != nullptr) {
    for (const auto node : msg.died) cancelled += ctx.rtx->cancel_to(node);
  }
  for (const auto& join : msg.joined) {
    ctx.dedup.assume(join.node, join.id_base);
  }
  if (msg.cancel_below > ctx.cancel_below) {
    ctx.cancel_below = msg.cancel_below;
    // Stashed gather chunks of voided images: partial output of a regime
    // that can never complete. Dropping them here frees the frames now
    // instead of at end of stream.
    ctx.stash.erase(ctx.stash.begin(),
                    ctx.stash.lower_bound(ctx.cancel_below));
  }
  return cancelled;
}

void scatter_image(RequesterContext& ctx, int seq, const cnn::Tensor& input) {
  int stream = 0;
  const EpochPlan* resolved;
  if (ctx.multi) {
    stream = ctx.owner.at(seq);  // dispatch_image must have bound it
    resolved = &ctx.lanes.at(stream).at(seq);
  } else {
    resolved = &ctx.epochs.at(seq);
  }
  const EpochPlan& ep = *resolved;
  obs::SpanScope span(obs::Cat::kScatter, seq, 0, ep.epoch);
  for (int i = 0; i < ep.plan.n_devices; ++i) {
    const auto& need = ep.plan.needs[0][static_cast<std::size_t>(i)];
    if (need.empty()) continue;
    if (ctx.mode == DataPlaneMode::kOverlapZeroCopy) {
      // The scatter rows encode straight out of the caller's input tensor;
      // no sliced temporary, and the frame buffer is recycled per image.
      post_rows(ctx.transport, data_addr(i), rpc::MsgType::kScatter, stream,
                seq, 0, ep.epoch, input, 0, need, ctx.arena, ctx.stats,
                ctx.rtx, /*sender=*/nullptr);
      continue;
    }
    ctx.stats.bytes_copied.fetch_add(  // the sliced temporary
        static_cast<Bytes>(need.size()) * input.w * input.c * 4,
        std::memory_order_relaxed);
    post_chunk(ctx.transport, data_addr(i),
               rpc::ChunkMsg{rpc::MsgType::kScatter, seq, 0, need.begin,
                             rpc::kNilNode, 0, ep.epoch, stream,
                             slice_rows(input, 0, need.begin, need.end)},
               ctx.stats, ctx.rtx);
  }
}

GatherStatus gather_image(RequesterContext& ctx, int seq,
                          const cnn::CnnModel& model, cnn::Tensor& output,
                          ImageRetryStats* retry) {
  const auto& last_layer = model.layer(model.num_layers() - 1);
  output = cnn::Tensor(last_layer.out_h(), last_layer.out_w(), last_layer.out_c);

  const cnn::RowInterval bounds{0, output.h};
  // The requester knows every epoch (it creates them), so a gather chunk's
  // tag must match the epoch serving its image exactly — and, in
  // multi-tenant mode, its stream tag must match the image's dispatched
  // owner (owner records exist exactly for the dispatched-not-yet-retired
  // window, so their lanes always cover the seq).
  const auto epoch_ok = [&ctx](const rpc::ChunkView& v) {
    if (!ctx.multi) {
      return v.epoch <= ctx.epochs.latest() &&
             ctx.epochs.at(v.seq).epoch == v.epoch;
    }
    const auto o = ctx.owner.find(v.seq);
    if (o == ctx.owner.end() || o->second != v.stream) return false;
    const auto l = ctx.lanes.find(v.stream);
    return l != ctx.lanes.end() && v.epoch <= l->second.latest() &&
           l->second.at(v.seq).epoch == v.epoch;
  };
  // Row-coverage accounting: the holders' parts partition the output and
  // each part arrives as one or more disjoint bands, so the gather is done
  // exactly when `output.h` fresh rows landed — independent of how many
  // chunks the senders cut them into.
  int remaining_rows = output.h;
  if (auto it = ctx.stash.find(seq); it != ctx.stash.end()) {
    for (auto& chunk : it->second) {
      // Runs on the requester thread with provider threads live, so a
      // geometry mismatch reports failure instead of throwing past them.
      if (!epoch_ok(chunk.view)) return GatherStatus::kFailed;
      if (!chunk_fits(chunk.view, bounds, output.w, output.c)) {
        return GatherStatus::kFailed;
      }
      blit_chunk(chunk, output, 0, ctx.mode, ctx.stats);
      remaining_rows -= chunk.view.h;
    }
    ctx.stash.erase(it);
  }
  RxState rx{ctx.transport, ctx.reliability, ctx.stats, ctx.dedup};
  const EpochPlan& ep = ctx.multi
                            ? ctx.lanes.at(ctx.owner.at(seq)).at(seq)
                            : ctx.epochs.at(seq);
  obs::SpanScope span(obs::Cat::kGather, seq, -1, ep.epoch);
  int timeout_rounds = 0;
  while (remaining_rows > 0) {
    if (ctx.interrupt && ctx.interrupt()) return GatherStatus::kInterrupted;
    RxChunk chunk;
    switch (receive_frame(rx, chunk)) {
      case RxKind::kStop:
        return GatherStatus::kFailed;
      case RxKind::kSkip:
      case RxKind::kReconfig:    // unreachable: requester sends these
      case RxKind::kDispatch:    // unreachable: dispatch ptr not passed
      case RxKind::kMembership:  // unreachable: requester sends these
      case RxKind::kLaneEvict:   // unreachable: lane-evict ptr not passed
        continue;
      case RxKind::kTimeout:
        ctx.stats.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
        obs::trace_instant(obs::Cat::kRecvTimeout, seq, -1, ep.epoch,
                           timeout_rounds);
        broadcast_nack(ctx.transport, ep.plan, seq, ep.plan.num_volumes(),
                       ctx.stats);
        if (retry != nullptr) ++retry->recv_timeouts;
        if (++timeout_rounds > ctx.reliability.max_recv_timeouts) {
          return GatherStatus::kFailed;
        }
        continue;
      case RxKind::kChunk:
        break;
    }
    timeout_rounds = 0;
    const auto& v = chunk.view;
    if (v.seq < ctx.cancel_below) {
      // Late output of a voided image: its input was re-dispatched under a
      // fresh seq, so this band is duplicate work to drop, not an error.
      obs::trace_instant(obs::Cat::kImageCancel, v.seq, v.volume, v.epoch);
      continue;
    }
    // Same stash-growth bound as the provider side: a gather for a past
    // image is a duplicate, one absurdly far ahead is off-plan.
    if (v.seq < seq || v.seq - seq > kMaxImagesAhead) {
      return GatherStatus::kFailed;
    }
    if (!epoch_ok(v)) return GatherStatus::kFailed;
    if (v.seq != seq) {
      ctx.stash[v.seq].push_back(std::move(chunk));
      continue;
    }
    if (!chunk_fits(v, bounds, output.w, output.c)) {
      return GatherStatus::kFailed;
    }
    blit_chunk(chunk, output, 0, ctx.mode, ctx.stats);
    remaining_rows -= v.h;
  }
  return GatherStatus::kOk;
}

}  // namespace de::runtime
