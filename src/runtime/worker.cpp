#include "runtime/worker.hpp"

#include <memory>
#include <utility>

#include "common/require.hpp"

namespace de::runtime {

namespace {

/// Receive outcome of one frame: a chunk, end-of-stream, skip (dropped
/// control/malformed/duplicate frame — caller should keep receiving), or an
/// expired bounded wait (reliable mode only).
enum class RxKind { kChunk, kStop, kSkip, kTimeout };

/// Receive-side state of one node, shared by the provider and gather loops.
/// The dedup window is borrowed from the loop owner: it must span the whole
/// run (chunk ids are per-sender monotonic across images), never one image.
struct RxState {
  rpc::Transport& transport;
  const ReliabilityOptions& reliability;
  DataPlaneStats& stats;
  ChunkDedup& dedup;
};

RxKind receive_frame(RxState& rx, rpc::ChunkMsg& out) {
  rpc::Payload payload;
  if (!rx.reliability.enabled) {
    auto received = rx.transport.receive(rpc::kDataMailbox);
    if (!received.has_value()) return RxKind::kStop;  // transport shut down
    payload = std::move(*received);
  } else {
    switch (rx.transport.receive_for(rpc::kDataMailbox,
                                     rx.reliability.recv_timeout_ms, payload)) {
      case rpc::RecvStatus::kClosed:
        return RxKind::kStop;
      case rpc::RecvStatus::kTimeout:
        return RxKind::kTimeout;
      case rpc::RecvStatus::kOk:
        break;
    }
  }
  try {
    const auto type = rpc::peek_type(payload);
    if (type == rpc::MsgType::kShutdown) return RxKind::kStop;
    if (!rpc::is_chunk_type(type)) {
      return RxKind::kSkip;  // halo requests (push-based plan), stray control
    }
    out = rpc::decode_chunk(payload);
  } catch (const Error&) {
    return RxKind::kSkip;  // malformed frame: drop, keep the node alive
  }
  if (out.chunk_id > 0 && out.from_node != rpc::kNilNode) {
    // Ack before dedup: a repeat usually means our previous ack was lost.
    rx.transport.send(ctrl_addr(out.from_node),
                      rpc::encode_ack(rpc::AckMsg{
                          rx.transport.local_node(), out.chunk_id}));
    if (!rx.dedup.fresh(out.from_node, out.chunk_id)) {
      rx.stats.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
      return RxKind::kSkip;
    }
  }
  return RxKind::kChunk;
}

/// "Still waiting on (seq, volume)" to every other node's control mailbox;
/// holders of unacked chunks for us retransmit immediately. Inactive
/// providers are skipped: they never send a chunk, so they hold nothing to
/// retransmit — and they run no Retransmitter, so frames posted to their
/// control mailbox would just pile up for the life of the stream.
void broadcast_nack(rpc::Transport& transport, const TransferPlan& plan,
                    int seq, int volume, DataPlaneStats& stats) {
  const auto self = transport.local_node();
  const auto frame =
      rpc::encode_nack(rpc::NackMsg{self, seq, volume});
  for (rpc::NodeId node = 0; node <= plan.requester_node(); ++node) {
    if (node == self) continue;
    if (node < plan.n_devices && !plan.device_active(node)) continue;
    transport.send(ctrl_addr(node), frame);
  }
  stats.nacks.fetch_add(1, std::memory_order_relaxed);
}

/// After a finite reliable run: keep servicing acks for our last chunks
/// until the outbox drains, the requester releases us (kShutdown), or the
/// transport closes. Bounded either way — unreachable receivers exhaust the
/// attempt budget and the entries are abandoned.
void drain_outbox(RxState& rx, Retransmitter& rtx) {
  rpc::ChunkMsg ignored;
  while (!rtx.idle()) {
    if (receive_frame(rx, ignored) == RxKind::kStop) return;
  }
}

/// True when `msg`'s rows are sane to blit into a destination of width `w`,
/// channels `c`, covering absolute rows `bounds`. Wire decoding only proves
/// the frame is self-consistent; a frame from a mismatched plan (or a
/// hostile loopback connection) can still claim rows far outside the
/// destination, which would write out of bounds. Because such a chunk
/// occupies a *counted* slot, silently dropping it would hang the run —
/// callers fail the image loudly instead.
bool chunk_fits(const rpc::ChunkMsg& msg, const cnn::RowInterval& bounds,
                int w, int c) {
  // 64-bit sum: row_offset near INT32_MAX decodes fine, and a signed int
  // overflow here would wrap negative and let the hostile chunk through.
  return msg.rows.w == w && msg.rows.c == c && msg.row_offset >= bounds.begin &&
         static_cast<std::int64_t>(msg.row_offset) + msg.rows.h <= bounds.end;
}

/// Farthest ahead of the current image a stashed chunk may be. Legitimate
/// pipelines are bounded by ServeOptions::inflight (single digits); anything
/// beyond this is a mismatched or hostile peer trying to grow the stash
/// without bound.
constexpr int kMaxImagesAhead = 4096;

[[noreturn]] void fail_geometry(const rpc::ChunkMsg& msg) {
  throw Error("chunk geometry disagrees with the local transfer plan (seq " +
              std::to_string(msg.seq) + ", volume " + std::to_string(msg.volume) +
              ", rows [" + std::to_string(msg.row_offset) + ", " +
              std::to_string(msg.row_offset + msg.rows.h) +
              ")) — mismatched strategy or hostile peer");
}

[[noreturn]] void fail_starved(int node, int seq, int volume, int rounds) {
  throw Error("node " + std::to_string(node) + " starved waiting for chunks of"
              " image " + std::to_string(seq) + ", volume " +
              std::to_string(volume) + " (" + std::to_string(rounds) +
              " timeout rounds) — peer dead or link severed past recovery");
}

}  // namespace

void post_chunk(rpc::Transport& transport, const rpc::Address& to,
                rpc::ChunkMsg msg, DataPlaneStats& stats, Retransmitter* rtx) {
  stats.messages.fetch_add(1, std::memory_order_relaxed);
  stats.bytes.fetch_add(
      static_cast<Bytes>(msg.rows.size()) * static_cast<Bytes>(sizeof(float)),
      std::memory_order_relaxed);
  if (rtx != nullptr) {
    msg.from_node = transport.local_node();
    msg.chunk_id = rtx->next_chunk_id(to.node);
    auto frame = rpc::encode_chunk(msg);
    rtx->track(to, msg.chunk_id, frame);  // keeps its own copy
    transport.send(to, std::move(frame));
    return;
  }
  transport.send(to, rpc::encode_chunk(msg));
}

void provider_loop(rpc::Transport& transport, int i, const cnn::CnnModel& model,
                   const sim::RawStrategy& strategy,
                   const std::vector<cnn::ConvWeights>& weights,
                   const TransferPlan& plan, int n_images,
                   DataPlaneStats& stats,
                   const ReliabilityOptions& reliability,
                   const cnn::ExecContext& exec) {
  const int n_volumes = plan.num_volumes();
  const bool active = plan.device_active(i);
  ChunkDedup dedup;
  RxState rx{transport, reliability, stats, dedup};

  if (!active) {
    if (n_images >= 0) return;  // finite run: nothing will ever arrive
    // Streaming run: wait for the requester's shutdown frame (timeouts on
    // an idle device are expected, not starvation).
    rpc::ChunkMsg ignored;
    while (receive_frame(rx, ignored) != RxKind::kStop) {}
    return;
  }

  std::unique_ptr<Retransmitter> rtx;
  if (reliability.enabled) {
    rtx = std::make_unique<Retransmitter>(transport, reliability, stats);
  }

  // Pack each conv layer's weights once for the run, not once per image.
  cnn::ExecCache exec_cache;
  cnn::ExecContext exec_ctx = exec;
  exec_ctx.cache = &exec_cache;

  // Chunks that arrived ahead of their (image, volume) slot.
  std::map<std::pair<int, int>, std::vector<rpc::ChunkMsg>> stash;

  for (int seq = 0; n_images < 0 || seq < n_images; ++seq) {
    cnn::Tensor prev_out;              // output rows of my last part
    cnn::RowInterval prev_rows{0, 0};  // which rows those are

    for (int l = 0; l < n_volumes; ++l) {
      const auto volume = strategy.volumes[static_cast<std::size_t>(l)];
      const auto layers = cnn::volume_layers(model, volume);
      const auto part =
          plan.parts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      const auto need =
          plan.needs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];

      cnn::Tensor out;
      if (!part.empty()) {
        const auto& first_layer = model.layer(volume.first);
        cnn::Tensor crop(need.size(), first_layer.in_w, first_layer.in_c);

        // Local contribution from my previous part.
        if (l > 0 && !prev_rows.empty()) {
          const auto own = need.intersect(prev_rows);
          if (!own.empty()) {
            blit_rows(prev_out, prev_rows.begin, own.begin, own.end, crop,
                      need.begin);
          }
        }
        // Remote chunks (may arrive interleaved with later slots).
        int remaining =
            plan.expected[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
        if (auto it = stash.find({seq, l}); it != stash.end()) {
          for (auto& msg : it->second) {
            if (!chunk_fits(msg, need, crop.w, crop.c)) fail_geometry(msg);
            blit_rows(msg.rows, msg.row_offset, msg.row_offset,
                      msg.row_offset + msg.rows.h, crop, need.begin);
            --remaining;
          }
          stash.erase(it);
        }
        int timeout_rounds = 0;
        while (remaining > 0) {
          rpc::ChunkMsg msg;
          switch (receive_frame(rx, msg)) {
            case RxKind::kStop:
              return;  // shutdown mid-inference: abandon the image
            case RxKind::kSkip:
              continue;
            case RxKind::kTimeout:
              stats.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
              broadcast_nack(transport, plan, seq, l, stats);
              if (++timeout_rounds > reliability.max_recv_timeouts) {
                fail_starved(i, seq, l, timeout_rounds);
              }
              continue;
            case RxKind::kChunk:
              break;
          }
          timeout_rounds = 0;
          // Chunks that can never be consumed would park in the stash for
          // the life of the stream; treat them as protocol violations.
          const bool off_plan =
              msg.volume >= n_volumes ||
              plan.expected[static_cast<std::size_t>(msg.volume)]
                           [static_cast<std::size_t>(i)] == 0 ||
              msg.seq < seq || (msg.seq == seq && msg.volume < l) ||
              (n_images >= 0 && msg.seq >= n_images) ||
              msg.seq - seq > kMaxImagesAhead;
          if (off_plan) fail_geometry(msg);
          if (msg.seq != seq || msg.volume != l) {
            stash[{msg.seq, msg.volume}].push_back(std::move(msg));
            continue;
          }
          if (!chunk_fits(msg, need, crop.w, crop.c)) fail_geometry(msg);
          blit_rows(msg.rows, msg.row_offset, msg.row_offset,
                    msg.row_offset + msg.rows.h, crop, need.begin);
          --remaining;
        }

        out = cnn::volume_forward_rows(
            layers, crop, need.begin, part,
            std::span<const cnn::ConvWeights>(weights).subspan(
                static_cast<std::size_t>(volume.first),
                static_cast<std::size_t>(volume.size())),
            exec_ctx);
      }

      // Ship my output where the next stage needs it.
      if (!part.empty()) {
        if (l + 1 < n_volumes) {
          for (int k = 0; k < plan.n_devices; ++k) {
            if (k == i) continue;
            const auto& kneed = plan.needs[static_cast<std::size_t>(l + 1)]
                                          [static_cast<std::size_t>(k)];
            const auto chunk = kneed.intersect(part);
            if (chunk.empty()) continue;
            post_chunk(transport, data_addr(k),
                       rpc::ChunkMsg{rpc::MsgType::kHaloRows, seq, l + 1,
                                     chunk.begin, rpc::kNilNode, 0,
                                     slice_rows(out, part.begin, chunk.begin,
                                                chunk.end)},
                       stats, rtx.get());
          }
        } else {
          // Final volume: `out` is not needed locally again, so move it.
          post_chunk(transport, data_addr(plan.requester_node()),
                     rpc::ChunkMsg{rpc::MsgType::kGather, seq, n_volumes,
                                   part.begin, rpc::kNilNode, 0,
                                   std::move(out)},
                     stats, rtx.get());
        }
      }
      prev_out = std::move(out);
      prev_rows = part;
    }
  }

  // Finite reliable run: our final gathers may still be unacked; keep the
  // link serviced until they are (or the budget runs out).
  if (rtx != nullptr && n_images >= 0) drain_outbox(rx, *rtx);
}

void scatter_image(RequesterContext& ctx, int seq, const cnn::Tensor& input) {
  for (int i = 0; i < ctx.plan.n_devices; ++i) {
    const auto& need = ctx.plan.needs[0][static_cast<std::size_t>(i)];
    if (need.empty()) continue;
    post_chunk(ctx.transport, data_addr(i),
               rpc::ChunkMsg{rpc::MsgType::kScatter, seq, 0, need.begin,
                             rpc::kNilNode, 0,
                             slice_rows(input, 0, need.begin, need.end)},
               ctx.stats, ctx.rtx);
  }
}

bool gather_image(RequesterContext& ctx, int seq, const cnn::CnnModel& model,
                  cnn::Tensor& output, ImageRetryStats* retry) {
  const auto& last_layer = model.layer(model.num_layers() - 1);
  output = cnn::Tensor(last_layer.out_h(), last_layer.out_w(), last_layer.out_c);

  const cnn::RowInterval bounds{0, output.h};
  int remaining = ctx.plan.holders_of_last();
  if (auto it = ctx.stash.find(seq); it != ctx.stash.end()) {
    for (auto& msg : it->second) {
      // Runs on the requester thread with provider threads live, so a
      // geometry mismatch reports failure instead of throwing past them.
      if (!chunk_fits(msg, bounds, output.w, output.c)) return false;
      blit_rows(msg.rows, msg.row_offset, msg.row_offset,
                msg.row_offset + msg.rows.h, output, 0);
      --remaining;
    }
    ctx.stash.erase(it);
  }
  RxState rx{ctx.transport, ctx.reliability, ctx.stats, ctx.dedup};
  int timeout_rounds = 0;
  while (remaining > 0) {
    rpc::ChunkMsg msg;
    switch (receive_frame(rx, msg)) {
      case RxKind::kStop:
        return false;
      case RxKind::kSkip:
        continue;
      case RxKind::kTimeout:
        ctx.stats.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
        broadcast_nack(ctx.transport, ctx.plan, seq, ctx.plan.num_volumes(),
                       ctx.stats);
        if (retry != nullptr) ++retry->recv_timeouts;
        if (++timeout_rounds > ctx.reliability.max_recv_timeouts) return false;
        continue;
      case RxKind::kChunk:
        break;
    }
    timeout_rounds = 0;
    // Same stash-growth bound as the provider side: a gather for a past
    // image is a duplicate, one absurdly far ahead is off-plan.
    if (msg.seq < seq || msg.seq - seq > kMaxImagesAhead) return false;
    if (msg.seq != seq) {
      ctx.stash[msg.seq].push_back(std::move(msg));
      continue;
    }
    if (!chunk_fits(msg, bounds, output.w, output.c)) return false;
    blit_rows(msg.rows, msg.row_offset, msg.row_offset,
              msg.row_offset + msg.rows.h, output, 0);
    --remaining;
  }
  return true;
}

}  // namespace de::runtime
