#include "runtime/transfer_plan.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace de::runtime {

int TransferPlan::holders_of_last() const {
  const auto& last = parts.back();
  return static_cast<int>(std::count_if(
      last.begin(), last.end(),
      [](const cnn::RowInterval& p) { return !p.empty(); }));
}

bool TransferPlan::device_active(int i) const {
  for (int l = 0; l < num_volumes(); ++l) {
    if (!parts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)].empty() ||
        expected[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)] > 0) {
      return true;
    }
  }
  return false;
}

void blit_rows(const cnn::Tensor& src, int src_offset, int src_begin,
               int src_end, cnn::Tensor& dst, int dst_offset) {
  DE_ASSERT(src.w == dst.w && src.c == dst.c, "blit extent mismatch");
  for (int y = src_begin; y < src_end; ++y) {
    const float* from =
        &src.data[static_cast<std::size_t>(y - src_offset) * src.w * src.c];
    float* to = &dst.data[static_cast<std::size_t>(y - dst_offset) * dst.w * dst.c];
    std::copy(from, from + static_cast<std::size_t>(src.w) * src.c, to);
  }
}

cnn::Tensor slice_rows(const cnn::Tensor& src, int src_offset, int begin, int end) {
  cnn::Tensor out(end - begin, src.w, src.c);
  blit_rows(src, src_offset, begin, end, out, begin);
  return out;
}

PartSchedule plan_part_schedule(const TransferPlan& plan, int l, int i,
                                int max_gather_bands) {
  DE_REQUIRE(l >= 0 && l < plan.num_volumes() && i >= 0 && i < plan.n_devices,
             "part schedule indices out of range");
  DE_REQUIRE(max_gather_bands >= 1, "need at least one gather band");
  const auto& part =
      plan.parts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
  PartSchedule sched;
  if (part.empty()) return sched;

  if (l + 1 == plan.num_volumes()) {
    // Final volume: stream the part to the requester band by band, so the
    // first output rows cross the wire while the rest still compute.
    const int nb = std::clamp(part.size() / 4, 1, max_gather_bands);
    for (int b = 0; b < nb; ++b) {
      const cnn::RowInterval band{part.begin + part.size() * b / nb,
                                  part.begin + part.size() * (b + 1) / nb};
      sched.bands.push_back(band);
      sched.sends.push_back(OutboundChunk{plan.requester_node(), band, b});
    }
    return sched;
  }

  // Intermediate volume: the rows some neighbor's next-volume need overlaps
  // are the boundary; cut the part at every neighbor-need edge so each
  // segment is either fully boundary or fully interior.
  std::vector<OutboundChunk> sends;
  std::vector<int> cuts{part.begin, part.end};
  for (int k = 0; k < plan.n_devices; ++k) {
    if (k == i) continue;
    const auto need = plan.needs[static_cast<std::size_t>(l + 1)]
                                [static_cast<std::size_t>(k)]
                          .intersect(part);
    if (need.empty()) continue;
    sends.push_back(OutboundChunk{k, need, 0});
    cuts.push_back(need.begin);
    cuts.push_back(need.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<cnn::RowInterval> interior;
  for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
    const cnn::RowInterval seg{cuts[s], cuts[s + 1]};
    const bool boundary =
        std::any_of(sends.begin(), sends.end(), [&](const OutboundChunk& o) {
          return !o.rows.intersect(seg).empty();
        });
    (boundary ? sched.bands : interior).push_back(seg);
  }
  sched.bands.insert(sched.bands.end(), interior.begin(), interior.end());

  // A halo chunk is ready once every band its rows touch has computed;
  // bands run in listed order, so that is the largest such band index. The
  // sends are then ordered by readiness so the worker flushes a prefix
  // after each band.
  for (auto& send : sends) {
    for (std::size_t b = 0; b < sched.bands.size(); ++b) {
      if (!send.rows.intersect(sched.bands[b]).empty()) {
        send.ready_after_band = static_cast<int>(b);
      }
    }
  }
  std::stable_sort(sends.begin(), sends.end(),
                   [](const OutboundChunk& a, const OutboundChunk& b) {
                     return a.ready_after_band < b.ready_after_band;
                   });
  sched.sends = std::move(sends);
  return sched;
}

void validate_cluster_inputs(const cnn::CnnModel& model,
                             const std::vector<cnn::ConvWeights>& weights,
                             const cnn::Tensor& input) {
  DE_REQUIRE(weights.size() == static_cast<std::size_t>(model.num_layers()),
             "one weight entry per layer");
  DE_REQUIRE(input.h == model.input_h() && input.w == model.input_w() &&
                 input.c == model.input_c(),
             "input extents mismatch");
}

TransferPlan build_transfer_plan(const cnn::CnnModel& model,
                                 const sim::RawStrategy& strategy,
                                 int n_devices) {
  DE_REQUIRE(n_devices >= 1, "need at least one device");
  DE_REQUIRE(strategy.volumes.size() == strategy.cuts.size(), "strategy shape");
  const int n_volumes = static_cast<int>(strategy.volumes.size());
  DE_REQUIRE(n_volumes >= 1, "strategy has no volumes");

  TransferPlan plan;
  plan.n_devices = n_devices;
  plan.parts.resize(static_cast<std::size_t>(n_volumes));
  plan.needs.resize(static_cast<std::size_t>(n_volumes));
  plan.expected.assign(static_cast<std::size_t>(n_volumes),
                       std::vector<int>(static_cast<std::size_t>(n_devices), 0));

  for (int l = 0; l < n_volumes; ++l) {
    const auto layers =
        cnn::volume_layers(model, strategy.volumes[static_cast<std::size_t>(l)]);
    const int height =
        cnn::volume_out_height(model, strategy.volumes[static_cast<std::size_t>(l)]);
    sim::validate_cuts(strategy.cuts[static_cast<std::size_t>(l)], n_devices, height);
    auto& lp = plan.parts[static_cast<std::size_t>(l)];
    auto& ln = plan.needs[static_cast<std::size_t>(l)];
    lp.resize(static_cast<std::size_t>(n_devices));
    ln.resize(static_cast<std::size_t>(n_devices));
    for (int i = 0; i < n_devices; ++i) {
      lp[static_cast<std::size_t>(i)] = cnn::RowInterval{
          strategy.cuts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
          strategy.cuts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i) + 1]};
      if (!lp[static_cast<std::size_t>(i)].empty()) {
        ln[static_cast<std::size_t>(i)] =
            cnn::required_input_rows(layers, lp[static_cast<std::size_t>(i)]);
      }
    }
  }
  for (int l = 0; l < n_volumes; ++l) {
    for (int i = 0; i < n_devices; ++i) {
      const auto& need =
          plan.needs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      if (need.empty()) continue;
      if (l == 0) {
        plan.expected[0][static_cast<std::size_t>(i)] = 1;  // from the requester
        continue;
      }
      for (int j = 0; j < n_devices; ++j) {
        if (j == i) continue;
        if (!need.intersect(
                     plan.parts[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>(j)])
                 .empty()) {
          plan.expected[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)]++;
        }
      }
    }
  }
  return plan;
}

}  // namespace de::runtime
