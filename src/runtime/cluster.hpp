// Distributed runtime: one worker per service provider, real tensor chunks
// flowing through an rpc::Transport, real conv/pool arithmetic.
//
// This is the data-plane counterpart of the event simulator: it executes a
// RawStrategy end-to-end (scatter -> per-volume split-part compute -> halo
// redistribution -> gather) with genuine concurrency, and its gathered
// output must equal the single-device reference forward bit-for-bit — the
// system-level proof of the Vertical-Splitting Law and of the transfer
// planning logic. The same worker loops run over shared memory
// (run_distributed) or a loopback TCP cluster (run_distributed_tcp); both
// push every chunk through the binary wire format. With RunOptions::faults
// the fabric is degraded by a FaultInjectingTransport and the wire-v2
// reliability protocol must still reproduce the reference bit-for-bit —
// the adversarial-scheduling proof. Timing remains the simulator's job
// (DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "cnn/exec_engine.hpp"
#include "obs/metrics.hpp"
#include "rpc/fault_transport.hpp"
#include "runtime/reliable.hpp"
#include "runtime/worker.hpp"
#include "sim/exec_sim.hpp"

namespace de::runtime {

/// Knobs of one cluster run. Fault injection requires the reliability
/// protocol: lost frames with no retransmission would hang the plan's
/// chunk accounting (the pre-v2 behaviour this layer exists to fix).
struct RunOptions {
  ReliabilityOptions reliability;
  const rpc::FaultSpec* faults = nullptr;  ///< not owned; may be null
  /// Conv/pool engine the provider workers execute with. The fast engine is
  /// bit-exact vs the reference (tests/cnn/exec_engine_test.cpp), so the
  /// gathered output is engine-independent; it defaults on so every worker
  /// uses the packed kernels + shared-pool row bands.
  cnn::ExecContext exec = cnn::ExecContext::fast_shared();
  /// Chunk path: halo-first zero-copy (default) or the PR-3 serial copying
  /// baseline. Both are bit-exact; the baseline exists for in-run A/B
  /// benches and the conformance tests.
  DataPlaneMode data_plane = DataPlaneMode::kOverlapZeroCopy;
};

struct ClusterResult {
  cnn::Tensor output;        ///< stitched output of the last volume
  /// Canonical per-run metrics (runtime/runtime_metrics.hpp names). The
  /// scalar fields below are views into this snapshot, kept for existing
  /// callers; the snapshot is the source of truth and uses the same names
  /// as ServeResult::metrics.
  obs::MetricsSnapshot metrics;
  std::int64_t messages_exchanged = 0;
  Bytes bytes_moved = 0;     ///< payload bytes across all chunk messages
  Bytes wire_bytes = 0;      ///< frame bytes on the wire, headers included
  Bytes bytes_copied = 0;    ///< userspace copies on the chunk path
  std::int64_t frame_allocs = 0;  ///< frame buffers the arenas had to malloc
  std::int64_t retransmits = 0;        ///< reliability-layer chunk resends
  std::int64_t duplicates_dropped = 0; ///< repeats absorbed by rx-side dedup
  std::int64_t recv_timeouts = 0;      ///< expired bounded waits (nack rounds)
};

/// Runs `strategy` on `n_devices` worker threads over the in-process
/// transport. `weights[l]` must hold the conv weights for layer l (ignored
/// entries for pooling layers).
ClusterResult run_distributed(const cnn::CnnModel& model,
                              const sim::RawStrategy& strategy,
                              const std::vector<cnn::ConvWeights>& weights,
                              const cnn::Tensor& input, int n_devices,
                              const RunOptions& options = {});

/// Same execution, but every node gets its own TcpTransport endpoint on
/// loopback: chunks genuinely cross the kernel's TCP stack as
/// length-prefixed wire frames. Must reproduce run_reference bit-for-bit,
/// exactly like the in-process path.
ClusterResult run_distributed_tcp(const cnn::CnnModel& model,
                                  const sim::RawStrategy& strategy,
                                  const std::vector<cnn::ConvWeights>& weights,
                                  const cnn::Tensor& input, int n_devices,
                                  const RunOptions& options = {});

/// Reference single-device forward of the conv chain (for cross-checking).
cnn::Tensor run_reference(const cnn::CnnModel& model,
                          const std::vector<cnn::ConvWeights>& weights,
                          const cnn::Tensor& input);

/// Random per-layer weights for a model (pool layers get empty entries).
std::vector<cnn::ConvWeights> random_weights(const cnn::CnnModel& model, Rng& rng);

}  // namespace de::runtime
