#include "runtime/serve.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "common/require.hpp"
#include "ctrl/controller.hpp"
#include "obs/admin.hpp"
#include "obs/prometheus.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/fabric.hpp"
#include "runtime/runtime_metrics.hpp"
#include "sim/fault_model.hpp"

namespace de::runtime {

namespace {

/// Registered admin routes, unrouted as a unit before the serving loop's
/// handler-captured locals die (teardown). unroute() is a barrier: after
/// release() returns no scrape thread is inside any of these handlers.
struct RouteGuard {
  obs::AdminServer* admin = nullptr;
  std::vector<std::string> paths;

  void add(const std::string& path, obs::AdminHandler handler) {
    admin->route(path, std::move(handler));
    paths.push_back(path);
  }
  void release() {
    if (admin == nullptr) return;
    for (const auto& path : paths) admin->unroute(path);
    paths.clear();
  }
};

}  // namespace

ServeResult serve_stream(const cnn::CnnModel& model,
                         const sim::RawStrategy& strategy,
                         const std::vector<cnn::ConvWeights>& weights,
                         std::span<const cnn::Tensor> inputs, int n_devices,
                         const ServeOptions& options) {
  DE_REQUIRE(!inputs.empty(), "serve_stream needs at least one image");
  DE_REQUIRE(options.inflight >= 1, "need at least one image in flight");
  DE_REQUIRE(options.faults == nullptr || options.reliability.enabled,
             "fault injection without the reliability protocol would hang "
             "the chunk accounting — enable ServeOptions::reliability");
  DE_REQUIRE(std::is_sorted(options.swaps.begin(), options.swaps.end(),
                            [](const ScriptedSwap& a, const ScriptedSwap& b) {
                              return a.at_image < b.at_image;
                            }),
             "scripted swaps must be sorted by at_image");
  DE_REQUIRE(std::is_sorted(options.chaos.begin(), options.chaos.end(),
                            [](const ChaosEvent& a, const ChaosEvent& b) {
                              return a.at_image < b.at_image;
                            }),
             "chaos events must be sorted by at_image");
  DE_REQUIRE(options.chaos.empty() ||
                 (options.faults != nullptr && options.controller != nullptr &&
                  options.heartbeat_ms > 0),
             "a chaos schedule needs a fault-decorated fabric (the kill "
             "switch lives on the fault decorators), heartbeats, and a "
             "lease-tracking controller to observe the deaths");
  for (const auto& input : inputs) {
    validate_cluster_inputs(model, weights, input);
  }
  const auto plan = build_transfer_plan(model, strategy, n_devices);
  const int n_images = static_cast<int>(inputs.size());
  const int telemetry_every =
      options.telemetry_every > 0
          ? options.telemetry_every
          : (options.controller != nullptr || options.trace != nullptr ? 1
                                                                       : 0);

  auto fabric = make_fabric(n_devices, options.use_tcp, options.faults,
                            options.data_plane, options.shaping);
  DataPlaneStats stats;
  Supervisor supervisor = spawn_providers(
      fabric, model, strategy, weights, plan,
      /*n_images=*/-1, stats, options.reliability, options.exec,
      options.data_plane, telemetry_every, options.heartbeat_ms,
      options.provider_max_restarts);

  ServeResult result;
  result.images = n_images;
  result.per_image.reserve(static_cast<std::size_t>(n_images));

  const int requester_node = plan.requester_node();
  obs::bind_thread("requester", requester_node);
  const std::int64_t requester_origin =
      fabric.node_origin_us[static_cast<std::size_t>(requester_node)];

  // Per-run registry: the data-plane totals fold in at the end; the gather
  // latency histogram records live (one lookup here, lock-free records).
  obs::MetricsRegistry registry;
  obs::Histogram& gather_latency =
      registry.histogram(kMetricGatherLatencyUs);
  obs::Histogram& image_latency = registry.histogram(kMetricImageLatencyUs);
  // Live stream counters: written per delivery (lock-free sets) so a
  // /metrics scrape mid-stream sees current values, re-set at the end with
  // the final totals.
  obs::Counter& images_counter = registry.counter(kMetricStreamImages);
  obs::Gauge& ips_gauge = registry.gauge(kMetricStreamIps);
  obs::Gauge& wall_gauge = registry.gauge(kMetricStreamWallS);
  // Ops-plane stream state (scrape threads read, the serving loop writes).
  obs::SloWindow slo(256, options.slo_ms);
  std::atomic<int> pub_delivered{0};
  std::atomic<int> pub_inflight{0};
  std::atomic<int> pub_last_epoch{-1};

  RequesterContext ctx(fabric.requester(), plan, stats, options.reliability,
                       options.data_plane);
  std::unique_ptr<Retransmitter> rtx;
  if (options.reliability.enabled) {
    rtx = std::make_unique<Retransmitter>(fabric.requester(),
                                          options.reliability, stats);
    ctx.rtx = rtx.get();
  }
  if (options.controller != nullptr) {
    if (options.trace != nullptr) {
      // The controller drains the telemetry mailbox, so it must also be the
      // one collecting the frames' steady-clock samples.
      options.controller->set_clock_sync(&options.trace->sync,
                                         requester_origin);
    }
    options.controller->start(fabric.requester(), strategy,
                              fabric.sampler(plan.requester_node()));
  }

  // Live ops plane: register the endpoint routes before the first scatter
  // so a scraper sees the stream from birth. Handlers capture serving-loop
  // state by reference — safe because RouteGuard::release() (first act of
  // teardown) is a barrier past which no scrape thread is inside them.
  RouteGuard routes{options.admin};
  if (options.admin != nullptr) {
    // Flight-recorder mode: arm the always-on rings if nobody has yet, and
    // deliberately leave them enabled at teardown — the recorder keeps
    // covering the gap until the next stream (or /trace/dump) wants history.
    if (!obs::TraceRecorder::instance().enabled()) {
      obs::TraceRecorder::instance().enable();
    }
    // Lease ages must be judged on the clock the controller stamps receive
    // times with: origin-rebased when the trace sync is wired, raw
    // obs::now_us() otherwise (clock_origin_us defaults to 0).
    const std::int64_t hb_origin =
        options.trace != nullptr && options.controller != nullptr
            ? requester_origin
            : 0;
    routes.add("/healthz", [](std::string_view) {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    });
    routes.add("/metrics", [&](std::string_view) {
      // The data-plane fold uses set(), so re-folding per scrape is
      // idempotent; live stream counters were set at the last delivery.
      fold_data_plane_metrics(stats, registry);
      sample_queue_depths(fabric.requester(), ctx.rtx, registry);
      return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               obs::to_prometheus(registry.snapshot())};
    });
    routes.add("/membership", [&options, &pub_last_epoch,
                               hb_origin](std::string_view) {
      if (options.controller == nullptr) {
        return obs::HttpResponse{200, "application/json; charset=utf-8",
                                 "{\"devices\":[]}\n"};
      }
      const auto view =
          options.controller->membership_view(obs::now_us() - hb_origin);
      return obs::HttpResponse{
          200, "application/json; charset=utf-8",
          ctrl::membership_json(view,
                               pub_last_epoch.load(std::memory_order_relaxed))};
    });
    routes.add("/streams", [&](std::string_view) {
      const auto st = slo.stats();
      std::string body = "{\"streams\":[{\"stream\":0";
      body += ",\"delivered\":" +
              std::to_string(pub_delivered.load(std::memory_order_relaxed));
      body += ",\"inflight\":" +
              std::to_string(pub_inflight.load(std::memory_order_relaxed));
      body += ",\"window\":" + std::to_string(options.inflight);
      body += ",\"p50_ms\":" + std::to_string(st.p50_ms);
      body += ",\"p95_ms\":" + std::to_string(st.p95_ms);
      body += ",\"p99_ms\":" + std::to_string(st.p99_ms);
      body += ",\"slo_ms\":" + std::to_string(st.target_ms);
      body += ",\"slo_violations\":" + std::to_string(st.violations);
      body += ",\"credit_stalls\":0}]}\n";
      return obs::HttpResponse{200, "application/json; charset=utf-8",
                               std::move(body)};
    });
    routes.add("/trace/dump", [&fabric, &options](std::string_view query) {
      double seconds = 10.0;  // default retention window
      if (const auto s = obs::query_param(query, "s"); s.has_value()) {
        seconds = std::atof(std::string(*s).c_str());
      }
      // A fresh capture per dump: the recorder rings are snapshot-safe
      // while writers are live, and the sync book (non-copyable) is rebuilt
      // from the stream's collected samples so the merge rebases remote
      // clocks exactly like the end-of-run export does.
      obs::TraceCapture cap;
      cap.dump = obs::TraceRecorder::instance().snapshot();
      cap.node_origin_us = fabric.node_origin_us;
      if (options.trace != nullptr) {
        for (const auto& s : options.trace->sync.samples()) {
          cap.sync.ingest(s.node, s.reported_us, s.received_us);
        }
      }
      auto merged = obs::trim_to_window(
          obs::merge_capture(cap),
          seconds > 0 ? static_cast<std::int64_t>(seconds * 1e6) : 0);
      std::ostringstream os;
      obs::write_chrome_trace(os, merged);
      return obs::HttpResponse{200, "application/json; charset=utf-8",
                               os.str()};
    });
  }

  // Shared teardown: unroute the admin handlers (barrier — everything they
  // capture may die after), stop the controller (it reads the requester
  // transport), release every provider, close the fabric, join. Nothing
  // may unwind past the live provider threads — a joinable std::thread's
  // destructor is std::terminate.
  const auto teardown = [&] {
    routes.release();
    if (options.controller != nullptr) options.controller->stop();
    if (rtx) rtx->stop();
    fabric.shutdown_all();
    supervisor.join_all();
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto stream_s = [&t0] {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  // Cut the stream over to `next` starting at the first unscattered image.
  const auto swap_now = [&](const sim::RawStrategy& next, int from_seq,
                            Ms pred_serving, Ms pred_next) {
    const int epoch = push_epoch(ctx, model, next, from_seq);
    pub_last_epoch.store(epoch, std::memory_order_relaxed);
    result.reconfigurations.push_back(
        ReconfigEvent{epoch, from_seq, stream_s(), pred_serving, pred_next});
  };
  std::size_t next_scripted = 0;

  // The dispatch state that makes re-dispatch possible: global seqs are
  // allocated forever forward, and the binding seq -> input index lives in
  // `inflight` (scatter order). A membership death voids the whole in-flight
  // window — the same inputs go back to the front of `todo` and out again
  // under fresh seqs, so no image is ever lost or delivered twice.
  std::deque<int> todo;  // input indices not yet (re-)dispatched
  for (int idx = 0; idx < n_images; ++idx) todo.push_back(idx);
  // One in-flight image: its global seq, its input index, and when its
  // (first) scatter began — the submit->deliver clock the SLO window and
  // the stream.image_latency_us histogram run on.
  struct InflightImage {
    int seq = 0;
    int idx = 0;
    std::int64_t scattered_us = 0;
  };
  std::deque<InflightImage> inflight;
  int next_seq = 0;
  int delivered = 0;
  int join_count = 0;
  std::size_t next_chaos = 0;
  if (options.keep_outputs) result.outputs.resize(inputs.size());

  if (options.controller != nullptr) {
    // Death decisions may interrupt a *blocked* gather: the rows the gather
    // is waiting for are on a dead device and will never arrive, and the
    // interrupted image is about to be cancelled anyway. Pure joins never
    // interrupt (an interrupted gather cannot resume — its consumed chunks
    // are gone), they wait for the next image boundary.
    ctx.interrupt = [&options] {
      return options.controller->death_pending();
    };
  }

  // Membership recovery: cancel the in-flight window, announce the change
  // to the survivors (the dead get nothing — a tracked frame to them only
  // churns the retransmit budget), cut the fleet over to the survivor
  // strategy, and re-dispatch the voided inputs under fresh seqs.
  const auto recover = [&](const ctrl::SwapDecision& d) {
    const bool death = !d.died.empty();
    rpc::MembershipMsg msg;
    // A death voids every in-flight image (split-compute: the dead device
    // owned a slice of each); a pure join voids nothing — the floor is
    // simply the oldest still-ungathered seq, below which everything is
    // already delivered.
    msg.cancel_below =
        death ? next_seq
              : (inflight.empty() ? next_seq : inflight.front().seq);
    msg.resume_seq = next_seq;
    msg.died = d.died;
    for (const auto node : d.joined) {
      // One fresh chunk-id incarnation per adoption: the joiner's outgoing
      // ids jump above every id of its previous life, and peers
      // fast-forward their dedup so the new ids are never mistaken for
      // replays (or worse, acked-and-dropped below a stale watermark).
      ++join_count;
      msg.joined.push_back(rpc::MembershipJoin{
          node, static_cast<std::uint32_t>(join_count) << 24});
    }
    apply_membership_local(ctx, msg);
    for (int k = 0; k < n_devices; ++k) {
      const auto node = static_cast<rpc::NodeId>(k);
      if (std::find(msg.died.begin(), msg.died.end(), node) !=
          msg.died.end()) {
        continue;
      }
      post_membership(ctx, node, msg);
    }
    int cancelled = 0;
    if (death) {
      cancelled = static_cast<int>(inflight.size());
      stats.images_cancelled.fetch_add(cancelled, std::memory_order_relaxed);
      for (auto it = inflight.rbegin(); it != inflight.rend(); ++it) {
        todo.push_front(it->idx);  // reverse walk keeps dispatch order
      }
      inflight.clear();
    }
    const int epoch = push_epoch(ctx, model, d.strategy, next_seq);
    pub_last_epoch.store(epoch, std::memory_order_relaxed);
    result.reconfigurations.push_back(ReconfigEvent{
        epoch, next_seq, stream_s(), d.predicted_serving_ms,
        d.predicted_next_ms, static_cast<int>(d.died.size()),
        static_cast<int>(d.joined.size()), cancelled});
  };

  // Pops the controller's pending decision, routing membership decisions
  // through recovery and plain drift swaps through a regular epoch push.
  const auto poll_controller = [&] {
    if (options.controller == nullptr) return;
    if (auto decision = options.controller->take_swap()) {
      if (decision->membership()) {
        recover(*decision);
      } else {
        swap_now(decision->strategy, next_seq, decision->predicted_serving_ms,
                 decision->predicted_next_ms);
      }
    }
  };

  while (delivered < n_images) {
    // History below the oldest ungathered seq is dead: epochs nothing
    // references and (after a cancellation) the voided dispatch window.
    retire_below(ctx, inflight.empty() ? next_seq : inflight.front().seq);
    // Chaos events are keyed on the delivered count, so a schedule is
    // deterministic under any timing: "kill node 2 after 8 deliveries".
    while (next_chaos < options.chaos.size() &&
           options.chaos[next_chaos].at_image <= delivered) {
      const ChaosEvent& ev = options.chaos[next_chaos];
      fabric.set_node_down(ev.node, ev.kill);
      result.chaos_applied_at_s.push_back(stream_s());
      ++next_chaos;
    }
    try {
      if (options.controller != nullptr &&
          options.controller->membership_pending()) {
        poll_controller();
      }
      while (!todo.empty() &&
             static_cast<int>(inflight.size()) < options.inflight) {
        // Swaps land exactly here — between two scatters — so every image
        // runs wholly under one epoch. Scripted swaps key on the global
        // scatter count (identical to the input index on a stable fleet).
        while (next_scripted < options.swaps.size() &&
               options.swaps[next_scripted].at_image <= next_seq) {
          swap_now(options.swaps[next_scripted].strategy, next_seq, 0, 0);
          ++next_scripted;
        }
        if (options.controller != nullptr) {
          if (auto decision = options.controller->take_swap()) {
            if (decision->membership()) {
              recover(*decision);
              break;  // the in-flight window changed: re-enter the fill loop
            }
            swap_now(decision->strategy, next_seq,
                     decision->predicted_serving_ms,
                     decision->predicted_next_ms);
          }
        }
        const int idx = todo.front();
        todo.pop_front();
        const std::int64_t scattered_us = obs::now_us();
        scatter_image(ctx, next_seq, inputs[static_cast<std::size_t>(idx)]);
        inflight.push_back({next_seq, idx, scattered_us});
        ++next_seq;
      }
    } catch (...) {
      // A swap's strategy failed plan building/validation (bad scripted
      // input or a buggy planner). Tear down before rethrowing — never
      // unwind past live threads.
      teardown();
      throw;
    }
    if (inflight.empty()) continue;  // recovery emptied the window: refill
    const auto [seq, idx, scattered_us] = inflight.front();
    cnn::Tensor output;
    ImageRetryStats retry;
    const std::int64_t gather_t0 = obs::now_us();
    const GatherStatus gathered = gather_image(ctx, seq, model, output, &retry);
    gather_latency.record(obs::now_us() - gather_t0);
    switch (gathered) {
      case GatherStatus::kInterrupted:
        continue;  // pending death: the top of the loop runs the recovery
      case GatherStatus::kFailed:
        // A provider failed (its barrier shut the fabric down), a peer sent
        // plan-mismatched chunks, or the gather starved past its timeout
        // budget.
        teardown();
        throw Error(
            "stream transport shut down or starved mid-gather (image " +
            std::to_string(idx) + " of " + std::to_string(n_images) + ")");
      case GatherStatus::kOk:
        break;
    }
    inflight.pop_front();
    ++delivered;
    result.delivered_at_s.push_back(stream_s());
    result.per_image.push_back(retry);
    // Publish the delivery to the ops plane: submit->deliver latency into
    // the histogram and the SLO window, live stream counters a /metrics or
    // /streams scrape reads mid-flight.
    const std::int64_t image_lat_us = obs::now_us() - scattered_us;
    image_latency.record(image_lat_us);
    slo.record_ms(static_cast<double>(image_lat_us) / 1000.0);
    pub_delivered.store(delivered, std::memory_order_relaxed);
    pub_inflight.store(static_cast<int>(inflight.size()),
                       std::memory_order_relaxed);
    images_counter.set(delivered);
    const double so_far_s = stream_s();
    wall_gauge.set(so_far_s);
    ips_gauge.set(so_far_s > 0 ? delivered / so_far_s : 0.0);
    if (options.admin != nullptr) {
      sample_queue_depths(fabric.requester(), ctx.rtx, registry);
    }
    if (options.keep_outputs) {
      // Indexed by *input*, not delivery order: a re-dispatched image must
      // land in its own slot for the bit-exactness gate to compare.
      result.outputs[static_cast<std::size_t>(idx)] = std::move(output);
    }
    if (telemetry_every > 0 && options.controller == nullptr) {
      // Telemetry was requested with nobody else to read it: drain the
      // mailbox here (or it grows for the life of the stream). A traced run
      // mines each frame for its steady-clock sample first.
      while (auto frame = fabric.requester().try_receive(
                 rpc::kTelemetryMailbox)) {
        if (options.trace == nullptr) continue;
        try {
          const rpc::TelemetryMsg msg = rpc::decode_telemetry(*frame);
          if (msg.steady_now_us > 0) {
            options.trace->sync.ingest(msg.from_node, msg.steady_now_us,
                                       obs::now_us() - requester_origin);
          }
        } catch (const Error&) {
          // Malformed telemetry: ignore, exactly like the controller does.
        }
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // End of stream: announce shutdown to every provider (best-effort — the
  // frame may be faulted away) before the common teardown closes the
  // fabric, which releases any provider that missed the frame. Only then
  // join: a provider blocked on a lost shutdown frame would otherwise
  // starve for its full timeout budget.
  for (int i = 0; i < n_devices; ++i) {
    fabric.requester().send(data_addr(i), rpc::encode_shutdown());
  }
  teardown();

  result.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  result.measured_ips =
      result.wall_s > 0 ? static_cast<double>(n_images) / result.wall_s : 0.0;
  stats.frame_allocs.fetch_add(ctx.arena.stats().allocated,
                               std::memory_order_relaxed);

  if (options.trace != nullptr) {
    // Everything merge_capture needs: the event dump, each node's clock
    // origin, and the sync samples collected above (or by the controller).
    options.trace->node_origin_us = fabric.node_origin_us;
    options.trace->dump = obs::TraceRecorder::instance().snapshot();
    // Critical-path attribution runs on the merged timeline; the per-device
    // straggler scores also land in the registry (before the snapshot
    // below) so they ride the same /metrics channel as everything else.
    result.attribution =
        obs::attribute_critical_paths(obs::merge_capture(*options.trace));
    for (const auto& dev : result.attribution.devices) {
      registry
          .gauge(std::string(kMetricStragglerScore) +
                 "{node=" + std::to_string(dev.node) + "}")
          .set(dev.score);
    }
  }

  // Fold the data-plane totals and the stream extras into the registry,
  // snapshot once, and fill the compatibility scalars from the snapshot —
  // the canonical names are the same ones run_distributed{,_tcp} report.
  fold_data_plane_metrics(stats, registry);
  registry.counter(kMetricStreamImages).set(n_images);
  registry.gauge(kMetricStreamWallS).set(result.wall_s);
  registry.gauge(kMetricStreamIps).set(result.measured_ips);
  registry.counter(kMetricStreamReconfigs)
      .set(static_cast<std::int64_t>(result.reconfigurations.size()));
  result.metrics = registry.snapshot();
  result.messages_exchanged = result.metrics.counter(kMetricMessages);
  result.bytes_moved = result.metrics.counter(kMetricPayloadBytes);
  result.wire_bytes = result.metrics.counter(kMetricWireBytes);
  result.bytes_copied = result.metrics.counter(kMetricBytesCopied);
  result.frame_allocs = result.metrics.counter(kMetricFrameAllocs);
  result.retransmits = result.metrics.counter(kMetricRetransmits);
  result.duplicates_dropped = result.metrics.counter(kMetricDupsDropped);
  result.recv_timeouts = result.metrics.counter(kMetricRecvTimeouts);
  result.nacks = result.metrics.counter(kMetricNacks);
  result.chunks_abandoned =
      result.metrics.counter(kMetricChunksAbandoned);
  result.retx_cancelled =
      stats.retx_cancelled.load(std::memory_order_relaxed);
  result.images_cancelled =
      stats.images_cancelled.load(std::memory_order_relaxed);
  result.provider_restarts = supervisor.stats().restarts;
  if (options.controller != nullptr) {
    const auto cstats = options.controller->stats();
    result.deaths = cstats.deaths;
    result.joins = cstats.joins;
    result.heartbeats = cstats.heartbeats;
  }

  if (options.latency != nullptr && options.network != nullptr) {
    sim::StreamOptions stream;
    stream.n_images = n_images;
    sim::LinkFaultModel mirror;
    if (options.faults != nullptr) {
      mirror = sim::mirror_faults(options.faults->drop_prob,
                                  options.faults->dup_prob,
                                  options.faults->delay_prob,
                                  0.5 * (options.faults->delay_min_ms +
                                         options.faults->delay_max_ms),
                                  options.reliability.rto_ms,
                                  options.reliability.max_attempts);
      stream.faults = &mirror;
    }
    const auto predicted = sim::stream_images(model, strategy, *options.latency,
                                              *options.network, stream);
    result.predicted_ips = predicted.ips;
  }
  return result;
}

}  // namespace de::runtime
