#include "runtime/serve.hpp"

#include <chrono>
#include <map>

#include "common/require.hpp"
#include "runtime/fabric.hpp"

namespace de::runtime {

ServeResult serve_stream(const cnn::CnnModel& model,
                         const sim::RawStrategy& strategy,
                         const std::vector<cnn::ConvWeights>& weights,
                         std::span<const cnn::Tensor> inputs, int n_devices,
                         const ServeOptions& options) {
  DE_REQUIRE(!inputs.empty(), "serve_stream needs at least one image");
  DE_REQUIRE(options.inflight >= 1, "need at least one image in flight");
  for (const auto& input : inputs) {
    validate_cluster_inputs(model, weights, input);
  }
  const auto plan = build_transfer_plan(model, strategy, n_devices);
  const int n_images = static_cast<int>(inputs.size());

  auto fabric = make_fabric(n_devices, options.use_tcp);
  DataPlaneStats stats;
  auto threads = spawn_providers(fabric, model, strategy, weights, plan,
                                 /*n_images=*/-1, stats);

  ServeResult result;
  result.images = n_images;
  auto& requester = fabric.requester();
  std::map<int, std::vector<rpc::ChunkMsg>> stash;

  const auto t0 = std::chrono::steady_clock::now();
  int next_scatter = 0;
  for (int done = 0; done < n_images; ++done) {
    while (next_scatter < n_images && next_scatter < done + options.inflight) {
      scatter_image(requester, next_scatter,
                    inputs[static_cast<std::size_t>(next_scatter)], plan, stats);
      ++next_scatter;
    }
    cnn::Tensor output;
    const bool ok = gather_image(requester, done, model, plan, stash, output);
    if (!ok) {
      // A provider failed (its barrier shut the requester down) or a peer
      // sent plan-mismatched chunks. Tear the fabric down and join before
      // throwing — never unwind past live threads.
      fabric.shutdown_all();
      for (auto& t : threads) t.join();
      throw Error("stream transport shut down mid-gather");
    }
    if (options.keep_outputs) result.outputs.push_back(std::move(output));
  }
  const auto t1 = std::chrono::steady_clock::now();

  // End of stream: tell every provider to stop, then tear the fabric down.
  for (int i = 0; i < n_devices; ++i) {
    requester.send(data_addr(i), rpc::encode_shutdown());
  }
  for (auto& t : threads) t.join();
  fabric.shutdown_all();

  result.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  result.measured_ips =
      result.wall_s > 0 ? static_cast<double>(n_images) / result.wall_s : 0.0;
  result.messages_exchanged = stats.messages.load();
  result.bytes_moved = stats.bytes.load();

  if (options.latency != nullptr && options.network != nullptr) {
    sim::StreamOptions stream;
    stream.n_images = n_images;
    const auto predicted = sim::stream_images(model, strategy, *options.latency,
                                              *options.network, stream);
    result.predicted_ips = predicted.ips;
  }
  return result;
}

}  // namespace de::runtime
