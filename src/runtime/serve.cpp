#include "runtime/serve.hpp"

#include <chrono>
#include <memory>

#include "common/require.hpp"
#include "runtime/fabric.hpp"
#include "sim/fault_model.hpp"

namespace de::runtime {

ServeResult serve_stream(const cnn::CnnModel& model,
                         const sim::RawStrategy& strategy,
                         const std::vector<cnn::ConvWeights>& weights,
                         std::span<const cnn::Tensor> inputs, int n_devices,
                         const ServeOptions& options) {
  DE_REQUIRE(!inputs.empty(), "serve_stream needs at least one image");
  DE_REQUIRE(options.inflight >= 1, "need at least one image in flight");
  DE_REQUIRE(options.faults == nullptr || options.reliability.enabled,
             "fault injection without the reliability protocol would hang "
             "the chunk accounting — enable ServeOptions::reliability");
  for (const auto& input : inputs) {
    validate_cluster_inputs(model, weights, input);
  }
  const auto plan = build_transfer_plan(model, strategy, n_devices);
  const int n_images = static_cast<int>(inputs.size());

  auto fabric = make_fabric(n_devices, options.use_tcp, options.faults,
                            options.data_plane);
  DataPlaneStats stats;
  auto threads = spawn_providers(fabric, model, strategy, weights, plan,
                                 /*n_images=*/-1, stats, options.reliability,
                                 options.exec, options.data_plane);

  ServeResult result;
  result.images = n_images;
  result.per_image.reserve(static_cast<std::size_t>(n_images));

  RequesterContext ctx(fabric.requester(), plan, stats, options.reliability,
                       options.data_plane);
  std::unique_ptr<Retransmitter> rtx;
  if (options.reliability.enabled) {
    rtx = std::make_unique<Retransmitter>(fabric.requester(),
                                          options.reliability, stats);
    ctx.rtx = rtx.get();
  }

  const auto t0 = std::chrono::steady_clock::now();
  int next_scatter = 0;
  for (int done = 0; done < n_images; ++done) {
    while (next_scatter < n_images && next_scatter < done + options.inflight) {
      scatter_image(ctx, next_scatter,
                    inputs[static_cast<std::size_t>(next_scatter)]);
      ++next_scatter;
    }
    cnn::Tensor output;
    ImageRetryStats retry;
    const bool ok = gather_image(ctx, done, model, output, &retry);
    if (!ok) {
      // A provider failed (its barrier shut the fabric down), a peer sent
      // plan-mismatched chunks, or the gather starved past its timeout
      // budget. Tear the fabric down and join before throwing — never
      // unwind past live threads.
      if (rtx) rtx->stop();
      fabric.shutdown_all();
      for (auto& t : threads) t.join();
      throw Error("stream transport shut down or starved mid-gather (image " +
                  std::to_string(done) + " of " + std::to_string(n_images) +
                  ")");
    }
    result.per_image.push_back(retry);
    if (options.keep_outputs) result.outputs.push_back(std::move(output));
  }
  const auto t1 = std::chrono::steady_clock::now();

  // End of stream: tell every provider to stop (best-effort — the frame may
  // be faulted away), then close the fabric, which releases any provider
  // that missed the frame. Only then join: a provider blocked on a lost
  // shutdown frame would otherwise starve for its full timeout budget.
  for (int i = 0; i < n_devices; ++i) {
    fabric.requester().send(data_addr(i), rpc::encode_shutdown());
  }
  if (rtx) rtx->stop();
  fabric.shutdown_all();
  for (auto& t : threads) t.join();

  result.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  result.measured_ips =
      result.wall_s > 0 ? static_cast<double>(n_images) / result.wall_s : 0.0;
  stats.frame_allocs.fetch_add(ctx.arena.stats().allocated,
                               std::memory_order_relaxed);
  result.messages_exchanged = stats.messages.load();
  result.bytes_moved = stats.bytes.load();
  result.wire_bytes = stats.wire_bytes.load();
  result.bytes_copied = stats.bytes_copied.load();
  result.frame_allocs = stats.frame_allocs.load();
  result.retransmits = stats.retransmits.load();
  result.duplicates_dropped = stats.duplicates_dropped.load();
  result.recv_timeouts = stats.recv_timeouts.load();
  result.nacks = stats.nacks.load();
  result.chunks_abandoned = stats.chunks_abandoned.load();

  if (options.latency != nullptr && options.network != nullptr) {
    sim::StreamOptions stream;
    stream.n_images = n_images;
    sim::LinkFaultModel mirror;
    if (options.faults != nullptr) {
      mirror = sim::mirror_faults(options.faults->drop_prob,
                                  options.faults->dup_prob,
                                  options.faults->delay_prob,
                                  0.5 * (options.faults->delay_min_ms +
                                         options.faults->delay_max_ms),
                                  options.reliability.rto_ms,
                                  options.reliability.max_attempts);
      stream.faults = &mirror;
    }
    const auto predicted = sim::stream_images(model, strategy, *options.latency,
                                              *options.network, stream);
    result.predicted_ips = predicted.ips;
  }
  return result;
}

}  // namespace de::runtime
