// Mailbox is header-only; this TU anchors the library target.
#include "runtime/mailbox.hpp"
