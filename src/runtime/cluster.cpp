#include "runtime/cluster.hpp"

#include <atomic>
#include <map>
#include <thread>

#include "common/require.hpp"
#include "runtime/mailbox.hpp"

namespace de::runtime {

namespace {

/// A horizontal slice of some volume's input tensor in absolute rows.
struct ChunkMsg {
  int volume = 0;       ///< destination volume index
  int row_offset = 0;   ///< absolute first row within that volume's input
  cnn::Tensor rows;
};

/// Copies rows [src_begin, src_end) (absolute) from `src` (whose row 0 is
/// absolute row `src_offset`) into `dst` (whose row 0 is `dst_offset`).
void blit_rows(const cnn::Tensor& src, int src_offset, int src_begin, int src_end,
               cnn::Tensor& dst, int dst_offset) {
  DE_ASSERT(src.w == dst.w && src.c == dst.c, "blit extent mismatch");
  for (int y = src_begin; y < src_end; ++y) {
    const float* from = &src.data[static_cast<std::size_t>(y - src_offset) * src.w * src.c];
    float* to = &dst.data[static_cast<std::size_t>(y - dst_offset) * dst.w * dst.c];
    std::copy(from, from + static_cast<std::size_t>(src.w) * src.c, to);
  }
}

cnn::Tensor slice_rows(const cnn::Tensor& src, int src_offset, int begin, int end) {
  cnn::Tensor out(end - begin, src.w, src.c);
  blit_rows(src, src_offset, begin, end, out, begin);
  return out;
}

}  // namespace

std::vector<cnn::ConvWeights> random_weights(const cnn::CnnModel& model, Rng& rng) {
  std::vector<cnn::ConvWeights> weights;
  weights.reserve(static_cast<std::size_t>(model.num_layers()));
  for (const auto& layer : model.layers()) {
    weights.push_back(layer.kind == cnn::LayerKind::kConv
                          ? cnn::ConvWeights::random(layer, rng)
                          : cnn::ConvWeights{});
  }
  return weights;
}

cnn::Tensor run_reference(const cnn::CnnModel& model,
                          const std::vector<cnn::ConvWeights>& weights,
                          const cnn::Tensor& input) {
  return cnn::volume_forward(
      std::span<const cnn::LayerConfig>(model.layers()),
      input, std::span<const cnn::ConvWeights>(weights));
}

ClusterResult run_distributed(const cnn::CnnModel& model,
                              const sim::RawStrategy& strategy,
                              const std::vector<cnn::ConvWeights>& weights,
                              const cnn::Tensor& input, int n_devices) {
  DE_REQUIRE(strategy.volumes.size() == strategy.cuts.size(), "strategy shape");
  DE_REQUIRE(weights.size() == static_cast<std::size_t>(model.num_layers()),
             "one weight entry per layer");
  DE_REQUIRE(input.h == model.input_h() && input.w == model.input_w() &&
                 input.c == model.input_c(),
             "input extents mismatch");
  const int n_volumes = static_cast<int>(strategy.volumes.size());

  // --- Static transfer plan (same interval algebra as the simulator). ---
  // parts[l][i] / needs[l][i]: output rows device i produces for volume l and
  // the volume-input rows it requires. expected[l][i]: number of incoming
  // chunk messages for volume l at device i.
  std::vector<std::vector<cnn::RowInterval>> parts(
      static_cast<std::size_t>(n_volumes));
  std::vector<std::vector<cnn::RowInterval>> needs(
      static_cast<std::size_t>(n_volumes));
  std::vector<std::vector<int>> expected(
      static_cast<std::size_t>(n_volumes),
      std::vector<int>(static_cast<std::size_t>(n_devices), 0));

  for (int l = 0; l < n_volumes; ++l) {
    const auto layers = cnn::volume_layers(model, strategy.volumes[static_cast<std::size_t>(l)]);
    const int height = cnn::volume_out_height(model, strategy.volumes[static_cast<std::size_t>(l)]);
    sim::validate_cuts(strategy.cuts[static_cast<std::size_t>(l)], n_devices, height);
    auto& lp = parts[static_cast<std::size_t>(l)];
    auto& ln = needs[static_cast<std::size_t>(l)];
    lp.resize(static_cast<std::size_t>(n_devices));
    ln.resize(static_cast<std::size_t>(n_devices));
    for (int i = 0; i < n_devices; ++i) {
      lp[static_cast<std::size_t>(i)] =
          cnn::RowInterval{strategy.cuts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
                           strategy.cuts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i) + 1]};
      if (!lp[static_cast<std::size_t>(i)].empty()) {
        ln[static_cast<std::size_t>(i)] =
            cnn::required_input_rows(layers, lp[static_cast<std::size_t>(i)]);
      }
    }
  }
  for (int l = 0; l < n_volumes; ++l) {
    for (int i = 0; i < n_devices; ++i) {
      const auto& need = needs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      if (need.empty()) continue;
      if (l == 0) {
        expected[0][static_cast<std::size_t>(i)] = 1;  // from the requester
        continue;
      }
      for (int j = 0; j < n_devices; ++j) {
        if (j == i) continue;
        if (!need.intersect(parts[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>(j)])
                 .empty()) {
          expected[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)]++;
        }
      }
    }
  }

  std::vector<Mailbox<ChunkMsg>> inboxes(static_cast<std::size_t>(n_devices));
  Mailbox<ChunkMsg> gather_box;
  std::atomic<int> messages{0};
  std::atomic<Bytes> bytes_moved{0};

  auto post = [&](Mailbox<ChunkMsg>& box, ChunkMsg msg) {
    messages.fetch_add(1, std::memory_order_relaxed);
    bytes_moved.fetch_add(
        static_cast<Bytes>(msg.rows.size()) * static_cast<Bytes>(sizeof(float)),
        std::memory_order_relaxed);
    box.send(std::move(msg));
  };

  auto worker = [&](int i) {
    cnn::Tensor prev_out;                      // output rows of my last part
    cnn::RowInterval prev_rows{0, 0};          // which rows those are
    std::map<int, std::vector<ChunkMsg>> stash;  // early chunks by volume

    for (int l = 0; l < n_volumes; ++l) {
      const auto volume = strategy.volumes[static_cast<std::size_t>(l)];
      const auto layers = cnn::volume_layers(model, volume);
      const auto part = parts[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
      const auto need = needs[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];

      cnn::Tensor out;
      if (!part.empty()) {
        const auto& first_layer = model.layer(volume.first);
        cnn::Tensor crop(need.size(), first_layer.in_w, first_layer.in_c);

        // Local contribution from my previous part.
        if (l > 0 && !prev_rows.empty()) {
          const auto own = need.intersect(prev_rows);
          if (!own.empty()) {
            blit_rows(prev_out, prev_rows.begin, own.begin, own.end, crop, need.begin);
          }
        }
        // Remote chunks (may arrive interleaved with later-volume chunks).
        int remaining = expected[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
        if (auto it = stash.find(l); it != stash.end()) {
          for (auto& msg : it->second) {
            blit_rows(msg.rows, msg.row_offset, msg.row_offset,
                      msg.row_offset + msg.rows.h, crop, need.begin);
            --remaining;
          }
          stash.erase(it);
        }
        while (remaining > 0) {
          auto msg = inboxes[static_cast<std::size_t>(i)].receive();
          DE_ASSERT(msg.has_value(), "inbox closed mid-inference");
          if (msg->volume != l) {
            stash[msg->volume].push_back(std::move(*msg));
            continue;
          }
          blit_rows(msg->rows, msg->row_offset, msg->row_offset,
                    msg->row_offset + msg->rows.h, crop, need.begin);
          --remaining;
        }

        out = cnn::volume_forward_rows(layers, crop, need.begin, part,
                                       std::span<const cnn::ConvWeights>(weights).subspan(
                                           static_cast<std::size_t>(volume.first),
                                           static_cast<std::size_t>(volume.size())));
      }

      // Ship my output where the next stage needs it.
      if (!part.empty()) {
        if (l + 1 < n_volumes) {
          for (int k = 0; k < n_devices; ++k) {
            if (k == i) continue;
            const auto& kneed =
                needs[static_cast<std::size_t>(l + 1)][static_cast<std::size_t>(k)];
            const auto chunk = kneed.intersect(part);
            if (chunk.empty()) continue;
            post(inboxes[static_cast<std::size_t>(k)],
                 ChunkMsg{l + 1, chunk.begin,
                          slice_rows(out, part.begin, chunk.begin, chunk.end)});
          }
        } else {
          post(gather_box, ChunkMsg{n_volumes, part.begin, out});
        }
      }
      prev_out = std::move(out);
      prev_rows = part;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_devices));
  for (int i = 0; i < n_devices; ++i) threads.emplace_back(worker, i);

  // Requester: scatter volume-0 inputs.
  for (int i = 0; i < n_devices; ++i) {
    const auto& need = needs[0][static_cast<std::size_t>(i)];
    if (need.empty()) continue;
    post(inboxes[static_cast<std::size_t>(i)],
         ChunkMsg{0, need.begin, slice_rows(input, 0, need.begin, need.end)});
  }

  // Gather the last volume's output.
  const auto& last_layer = model.layer(model.num_layers() - 1);
  cnn::Tensor output(last_layer.out_h(), last_layer.out_w(), last_layer.out_c);
  int holders = 0;
  for (int i = 0; i < n_devices; ++i) {
    if (!parts[static_cast<std::size_t>(n_volumes - 1)][static_cast<std::size_t>(i)].empty()) {
      ++holders;
    }
  }
  for (int k = 0; k < holders; ++k) {
    auto msg = gather_box.receive();
    DE_ASSERT(msg.has_value(), "gather box closed early");
    blit_rows(msg->rows, msg->row_offset, msg->row_offset,
              msg->row_offset + msg->rows.h, output, 0);
  }

  for (auto& t : threads) t.join();
  for (auto& box : inboxes) box.close();
  gather_box.close();

  ClusterResult result;
  result.output = std::move(output);
  result.messages_exchanged = messages.load();
  result.bytes_moved = bytes_moved.load();
  return result;
}

}  // namespace de::runtime
