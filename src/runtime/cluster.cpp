#include "runtime/cluster.hpp"

#include <map>

#include "common/require.hpp"
#include "runtime/fabric.hpp"

namespace de::runtime {

namespace {

/// Single-image run over either transport backend.
ClusterResult run_once(const cnn::CnnModel& model,
                       const sim::RawStrategy& strategy,
                       const std::vector<cnn::ConvWeights>& weights,
                       const cnn::Tensor& input, int n_devices, bool use_tcp) {
  validate_cluster_inputs(model, weights, input);
  const auto plan = build_transfer_plan(model, strategy, n_devices);

  auto fabric = make_fabric(n_devices, use_tcp);
  DataPlaneStats stats;
  auto threads =
      spawn_providers(fabric, model, strategy, weights, plan, /*n_images=*/1, stats);

  scatter_image(fabric.requester(), /*seq=*/0, input, plan, stats);

  std::map<int, std::vector<rpc::ChunkMsg>> stash;
  cnn::Tensor output;
  const bool ok =
      gather_image(fabric.requester(), /*seq=*/0, model, plan, stash, output);
  if (!ok) {
    // A provider failed (its barrier shut the requester down) or a peer sent
    // plan-mismatched chunks. Tear the fabric down and join before throwing —
    // never unwind past live threads.
    fabric.shutdown_all();
    for (auto& t : threads) t.join();
    throw Error("cluster transport shut down mid-gather");
  }

  for (auto& t : threads) t.join();
  fabric.shutdown_all();

  ClusterResult result;
  result.output = std::move(output);
  result.messages_exchanged = stats.messages.load();
  result.bytes_moved = stats.bytes.load();
  return result;
}

}  // namespace

std::vector<cnn::ConvWeights> random_weights(const cnn::CnnModel& model, Rng& rng) {
  std::vector<cnn::ConvWeights> weights;
  weights.reserve(static_cast<std::size_t>(model.num_layers()));
  for (const auto& layer : model.layers()) {
    weights.push_back(layer.kind == cnn::LayerKind::kConv
                          ? cnn::ConvWeights::random(layer, rng)
                          : cnn::ConvWeights{});
  }
  return weights;
}

cnn::Tensor run_reference(const cnn::CnnModel& model,
                          const std::vector<cnn::ConvWeights>& weights,
                          const cnn::Tensor& input) {
  return cnn::volume_forward(
      std::span<const cnn::LayerConfig>(model.layers()),
      input, std::span<const cnn::ConvWeights>(weights));
}

ClusterResult run_distributed(const cnn::CnnModel& model,
                              const sim::RawStrategy& strategy,
                              const std::vector<cnn::ConvWeights>& weights,
                              const cnn::Tensor& input, int n_devices) {
  return run_once(model, strategy, weights, input, n_devices, /*use_tcp=*/false);
}

ClusterResult run_distributed_tcp(const cnn::CnnModel& model,
                                  const sim::RawStrategy& strategy,
                                  const std::vector<cnn::ConvWeights>& weights,
                                  const cnn::Tensor& input, int n_devices) {
  return run_once(model, strategy, weights, input, n_devices, /*use_tcp=*/true);
}

}  // namespace de::runtime
