#include "runtime/cluster.hpp"

#include <map>
#include <memory>

#include "common/require.hpp"
#include "runtime/fabric.hpp"
#include "runtime/runtime_metrics.hpp"

namespace de::runtime {

namespace {

/// Single-image run over either transport backend.
ClusterResult run_once(const cnn::CnnModel& model,
                       const sim::RawStrategy& strategy,
                       const std::vector<cnn::ConvWeights>& weights,
                       const cnn::Tensor& input, int n_devices, bool use_tcp,
                       const RunOptions& options) {
  validate_cluster_inputs(model, weights, input);
  DE_REQUIRE(options.faults == nullptr || options.reliability.enabled,
             "fault injection without the reliability protocol would hang "
             "the chunk accounting — enable RunOptions::reliability");
  const auto plan = build_transfer_plan(model, strategy, n_devices);

  auto fabric = make_fabric(n_devices, use_tcp, options.faults,
                            options.data_plane);
  DataPlaneStats stats;
  Supervisor supervisor = spawn_providers(fabric, model, strategy, weights,
                                          plan, /*n_images=*/1, stats,
                                          options.reliability, options.exec,
                                          options.data_plane);

  RequesterContext ctx(fabric.requester(), plan, stats, options.reliability,
                       options.data_plane);
  std::unique_ptr<Retransmitter> rtx;
  if (options.reliability.enabled) {
    rtx = std::make_unique<Retransmitter>(fabric.requester(),
                                          options.reliability, stats);
    ctx.rtx = rtx.get();
  }

  scatter_image(ctx, /*seq=*/0, input);

  cnn::Tensor output;
  if (gather_image(ctx, /*seq=*/0, model, output) != GatherStatus::kOk) {
    // A provider failed (its barrier shut the fabric down), a peer sent
    // plan-mismatched chunks, or the gather starved past its timeout
    // budget. Tear the fabric down and join before throwing — never unwind
    // past live threads.
    if (rtx) rtx->stop();
    fabric.shutdown_all();
    supervisor.join_all();
    throw Error("cluster transport shut down mid-gather");
  }

  if (options.reliability.enabled) {
    // Release the providers from their outbox drain: the gather is
    // complete, nothing they still hold matters. Best-effort — a lost
    // release frame just costs them their bounded attempt budget.
    for (int i = 0; i < n_devices; ++i) {
      fabric.requester().send(data_addr(i), rpc::encode_shutdown());
    }
  }
  supervisor.join_all();
  if (rtx) rtx->stop();
  fabric.shutdown_all();

  stats.frame_allocs.fetch_add(ctx.arena.stats().allocated,
                               std::memory_order_relaxed);

  ClusterResult result;
  result.output = std::move(output);
  // One registry per run, snapshotted once: the canonical names are the
  // result's source of truth, the scalars below are compatibility views.
  obs::MetricsRegistry registry;
  fold_data_plane_metrics(stats, registry);
  result.metrics = registry.snapshot();
  result.messages_exchanged = result.metrics.counter(kMetricMessages);
  result.bytes_moved = result.metrics.counter(kMetricPayloadBytes);
  result.wire_bytes = result.metrics.counter(kMetricWireBytes);
  result.bytes_copied = result.metrics.counter(kMetricBytesCopied);
  result.frame_allocs = result.metrics.counter(kMetricFrameAllocs);
  result.retransmits = result.metrics.counter(kMetricRetransmits);
  result.duplicates_dropped = result.metrics.counter(kMetricDupsDropped);
  result.recv_timeouts = result.metrics.counter(kMetricRecvTimeouts);
  return result;
}

}  // namespace

std::vector<cnn::ConvWeights> random_weights(const cnn::CnnModel& model, Rng& rng) {
  std::vector<cnn::ConvWeights> weights;
  weights.reserve(static_cast<std::size_t>(model.num_layers()));
  for (const auto& layer : model.layers()) {
    weights.push_back(layer.kind == cnn::LayerKind::kConv
                          ? cnn::ConvWeights::random(layer, rng)
                          : cnn::ConvWeights{});
  }
  return weights;
}

cnn::Tensor run_reference(const cnn::CnnModel& model,
                          const std::vector<cnn::ConvWeights>& weights,
                          const cnn::Tensor& input) {
  return cnn::volume_forward(
      std::span<const cnn::LayerConfig>(model.layers()),
      input, std::span<const cnn::ConvWeights>(weights));
}

ClusterResult run_distributed(const cnn::CnnModel& model,
                              const sim::RawStrategy& strategy,
                              const std::vector<cnn::ConvWeights>& weights,
                              const cnn::Tensor& input, int n_devices,
                              const RunOptions& options) {
  return run_once(model, strategy, weights, input, n_devices, /*use_tcp=*/false,
                  options);
}

ClusterResult run_distributed_tcp(const cnn::CnnModel& model,
                                  const sim::RawStrategy& strategy,
                                  const std::vector<cnn::ConvWeights>& weights,
                                  const cnn::Tensor& input, int n_devices,
                                  const RunOptions& options) {
  return run_once(model, strategy, weights, input, n_devices, /*use_tcp=*/true,
                  options);
}

}  // namespace de::runtime
