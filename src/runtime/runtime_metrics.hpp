// The runtime's canonical metric names (DESIGN.md §observability): one
// fold from the data plane's hot-path counters (DataPlaneStats) into an
// obs::MetricsRegistry, shared by every entry point — run_distributed,
// run_distributed_tcp, and serve_stream all report the same names whether
// the chunk path was serial or zero-copy, so consumers never branch on
// which mode produced a result.
#pragma once

#include "obs/metrics.hpp"
#include "runtime/reliable.hpp"

namespace de::runtime {

// Canonical names. Tests assert on these strings; add, never rename.
inline constexpr const char* kMetricMessages = "data_plane.messages";
inline constexpr const char* kMetricPayloadBytes = "data_plane.payload_bytes";
inline constexpr const char* kMetricWireBytes = "data_plane.wire_bytes";
inline constexpr const char* kMetricBytesCopied = "data_plane.bytes_copied";
inline constexpr const char* kMetricFrameAllocs = "data_plane.frame_allocs";
inline constexpr const char* kMetricRetransmits = "reliability.retransmits";
inline constexpr const char* kMetricAcks = "reliability.acks";
inline constexpr const char* kMetricDupsDropped =
    "reliability.duplicates_dropped";
inline constexpr const char* kMetricNacks = "reliability.nacks";
inline constexpr const char* kMetricRecvTimeouts = "reliability.recv_timeouts";
inline constexpr const char* kMetricChunksAbandoned =
    "reliability.chunks_abandoned";
// Membership / churn (all zero on a stable fleet).
inline constexpr const char* kMetricRetxCancelled =
    "membership.retx_cancelled";
inline constexpr const char* kMetricImagesCancelled =
    "membership.images_cancelled";
inline constexpr const char* kMetricLanesEvicted = "membership.lanes_evicted";
// Streaming-only extras (serve_stream).
inline constexpr const char* kMetricStreamImages = "stream.images";
inline constexpr const char* kMetricStreamWallS = "stream.wall_s";
inline constexpr const char* kMetricStreamIps = "stream.measured_ips";
inline constexpr const char* kMetricStreamReconfigs = "stream.reconfigurations";
inline constexpr const char* kMetricGatherLatencyUs = "stream.gather_latency_us";
// Ops-plane extras (serve_stream with an admin endpoint attached).
inline constexpr const char* kMetricImageLatencyUs = "stream.image_latency_us";
// Queue-depth gauge families (ROADMAP item 3 baselines). These are label
// *prefixes* — series are named e.g. "rpc.mailbox_depth{name=data}" and
// "reliable.outbox_depth{node=2}"; the Prometheus exporter turns the brace
// block into real labels.
inline constexpr const char* kMetricMailboxDepth = "rpc.mailbox_depth";
inline constexpr const char* kMetricOutboxDepth = "reliable.outbox_depth";
// Attribution exports (gauges, per device node).
inline constexpr const char* kMetricStragglerScore =
    "attribution.straggler_score";

/// Folds one run's DataPlaneStats totals into `registry` under the
/// canonical names above (counters are *set*, not added: the registry is
/// per run). Call once, at the end of a run, after every worker joined.
/// Because it sets, re-folding mid-run is safe — the /metrics scrape path
/// calls it on every hit to serve live values.
void fold_data_plane_metrics(const DataPlaneStats& stats,
                             obs::MetricsRegistry& registry);

/// Samples the requester-side queue depths into `registry`: one
/// rpc.mailbox_depth{name=...} gauge per well-known mailbox of `transport`
/// and one reliable.outbox_depth{node=N} gauge per peer with unacked
/// frames in `rtx` (nullptr = reliability off, outboxes omitted). Cheap
/// enough for once-per-image sampling; also run at scrape time.
void sample_queue_depths(const rpc::Transport& transport,
                         const Retransmitter* rtx,
                         obs::MetricsRegistry& registry);

}  // namespace de::runtime
