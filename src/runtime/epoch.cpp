#include "runtime/epoch.hpp"

#include <utility>

#include "common/require.hpp"

namespace de::runtime {

EpochTable::EpochTable(EpochPlan initial) {
  DE_REQUIRE(initial.from_seq >= 0,
             "the initial epoch must start at a valid image");
  epochs_.push_back(std::make_unique<EpochPlan>(std::move(initial)));
}

const EpochPlan& EpochTable::at(int seq) const {
  // Newest epoch whose from_seq covers seq; the table is small (one entry
  // per recent reconfiguration), so a reverse scan beats anything fancier.
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if ((*it)->from_seq <= seq) return **it;
  }
  DE_REQUIRE(false, "no epoch covers the requested image");
  return *epochs_.front();  // unreachable
}

const EpochPlan* EpochTable::after(int seq) const {
  const EpochPlan* next = nullptr;
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if ((*it)->from_seq <= seq) break;
    next = it->get();
  }
  return next;
}

bool EpochTable::knows(int epoch) const {
  for (const auto& e : epochs_) {
    if (e->epoch == epoch) return true;
  }
  return false;
}

void EpochTable::add(EpochPlan next) {
  if (next.epoch < oldest()) return;  // retired: a stale retransmission
  for (const auto& e : epochs_) {
    if (e->epoch != next.epoch) continue;
    // A retransmitted announcement repeats its content exactly; the same
    // id with a different cutover is a protocol violation.
    DE_REQUIRE(e->from_seq == next.from_seq,
               "conflicting announcements for one epoch id");
    return;
  }
  // Id-ordered insert: under faults, epoch E's announcement can be dropped
  // and retransmitted after E+1 already landed — a legal delivery order
  // the table must absorb. from_seq must stay monotone in id order. Only
  // the pointers move; EpochPlan references held by callers stay valid.
  auto pos = epochs_.begin();
  while (pos != epochs_.end() && (*pos)->epoch < next.epoch) ++pos;
  DE_REQUIRE(
      pos == epochs_.begin() || (*std::prev(pos))->from_seq <= next.from_seq,
      "epoch cutover seq regresses against its predecessor");
  DE_REQUIRE(pos == epochs_.end() || next.from_seq <= (*pos)->from_seq,
             "epoch cutover seq overtakes its successor");
  epochs_.insert(pos, std::make_unique<EpochPlan>(std::move(next)));
}

void EpochTable::retire(int watermark) {
  while (epochs_.size() >= 2 && epochs_[1]->from_seq <= watermark) {
    epochs_.pop_front();
  }
}

EpochPlan epoch_from_reconfigure(const rpc::ReconfigureMsg& msg,
                                 const cnn::CnnModel& model) {
  EpochPlan next;
  next.epoch = msg.epoch;
  next.from_seq = msg.from_seq;
  next.strategy.volumes = msg.volumes;
  next.strategy.cuts = msg.cuts;
  // build_transfer_plan validates volumes/cuts against the model and throws
  // de::Error on anything inconsistent.
  next.plan = build_transfer_plan(model, next.strategy, msg.n_devices);
  return next;
}

rpc::ReconfigureMsg reconfigure_from_epoch(const EpochPlan& next) {
  rpc::ReconfigureMsg msg;
  msg.epoch = next.epoch;
  msg.from_seq = next.from_seq;
  msg.n_devices = next.plan.n_devices;
  msg.volumes = next.strategy.volumes;
  msg.cuts = next.strategy.cuts;
  return msg;
}

}  // namespace de::runtime
