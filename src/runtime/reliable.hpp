// Reliability layer of the cluster data plane (DESIGN.md §fault-model):
// sender-driven retransmission with receiver-side dedup, turning the
// transport's at-most-once sends into effectively-once chunk delivery.
//
// Protocol: every tracked chunk carries a per-sender `chunk_id` (wire v2).
// The receiver acks each tracked chunk back to {sender, kCtrlMailbox} and
// drops repeats of the same (sender, chunk_id). Each node runs one
// Retransmitter thread that drains its control mailbox: acks retire outbox
// entries; nacks (sent by a receiver whose data wait timed out) trigger an
// immediate resend of every unacked frame destined to the complainer. Acks
// and nacks are themselves fire-and-forget — a lost ack just costs one
// duplicate, which the dedup window absorbs.
//
// Retransmission is bounded: after `max_attempts` sends a chunk is
// abandoned (counted in DataPlaneStats::chunks_abandoned) so a permanently
// severed link degrades into a loud, bounded failure instead of a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/units.hpp"
#include "rpc/transport.hpp"
#include "rpc/wire.hpp"

namespace de::runtime {

/// Tuning of the reliability protocol. Disabled by default: with `enabled`
/// false the data plane behaves exactly like v1 (no chunk ids, no acks,
/// unbounded blocking receives) — the right mode on a trusted fabric.
/// Note on rto tuning: a chunk is acked when the receiver *dequeues* it,
/// not when it lands in the mailbox, so the rto should comfortably exceed
/// the receiver's worst per-volume compute time. A too-small rto is safe —
/// spurious resends are absorbed by dedup — but wastes bandwidth, and a
/// receiver stalled past rto_ms * max_attempts gets its (delivered) chunks
/// reported as abandoned.
struct ReliabilityOptions {
  bool enabled = false;
  int recv_timeout_ms = 50;    ///< data-mailbox wait before a nack round
  int max_recv_timeouts = 200; ///< consecutive timeout rounds before failing
  int rto_ms = 25;             ///< resend a chunk unacked for this long
  int max_attempts = 40;       ///< total sends per chunk before giving up
};

/// Chunk-message accounting shared by all nodes of one run. The first two
/// fields count every data chunk posted (including retransmissions in
/// `retransmits`); the rest are reliability-layer events.
struct DataPlaneStats {
  std::atomic<std::int64_t> messages{0};
  std::atomic<Bytes> bytes{0};  ///< tensor payload bytes (not frame bytes)
  std::atomic<Bytes> wire_bytes{0};    ///< full frame bytes (headers included)
  /// Userspace bytes memcpy'd on the chunk path (slice/encode/decode/blit).
  /// bytes_copied / bytes is the observable copies-per-halo-byte figure the
  /// zero-copy plane keeps at <= 2 (encode into the frame + blit out of it).
  std::atomic<Bytes> bytes_copied{0};
  /// Frame-buffer heap allocations by the data-plane arenas; steady-state
  /// streaming reuses warm buffers, so this stays flat per extra image.
  std::atomic<std::int64_t> frame_allocs{0};
  std::atomic<std::int64_t> retransmits{0};
  std::atomic<std::int64_t> acks{0};
  std::atomic<std::int64_t> duplicates_dropped{0};
  std::atomic<std::int64_t> nacks{0};
  std::atomic<std::int64_t> recv_timeouts{0};
  std::atomic<std::int64_t> chunks_abandoned{0};  ///< gave up after max_attempts
  /// Outbox entries dropped by cancel_to() when the controller declared the
  /// destination dead — retransmission budget released without burning the
  /// full rto/attempt schedule.
  std::atomic<std::int64_t> retx_cancelled{0};
  /// In-flight images voided by a membership change and re-dispatched under
  /// fresh seqs (never corrupted, never silently dropped).
  std::atomic<std::int64_t> images_cancelled{0};
  /// Retired epoch lanes evicted from providers (stream closed + drained).
  std::atomic<std::int64_t> lanes_evicted{0};
};

/// Receive-side duplicate filter: tracks (sender, chunk_id) pairs with a
/// highest-contiguous-id watermark plus a sparse set for out-of-order
/// arrivals. Senders allocate chunk ids per destination link (1, 2, 3, ...
/// with no gaps from this receiver's point of view), so the watermark keeps
/// advancing and memory stays O(reorder window) per sender even on
/// unbounded streams.
class ChunkDedup {
 public:
  /// True exactly once per (sender, chunk_id); false for every repeat.
  bool fresh(rpc::NodeId sender, std::uint32_t chunk_id);

  /// Fast-forwards `sender`'s watermark to at least `base`: every id <= base
  /// is treated as seen, ids above it as fresh. Applied when a membership
  /// change announces the sender's new chunk-id incarnation base, so a
  /// rejoined node's fresh ids are never mistaken for replays of its
  /// previous life (nor, worse, acked-then-dropped below a stale
  /// watermark). Never moves the watermark backwards.
  void assume(rpc::NodeId sender, std::uint32_t base);

  /// Sparse ids tolerated per sender before the window assumes the gap is
  /// permanent and advances past the oldest hole. Far above any real
  /// reorder window; reached only when a sender legitimately jumped its ids
  /// (rejoin) and this receiver missed the membership announcement.
  static constexpr std::size_t kMaxSparse = 4096;

 private:
  struct Window {
    std::uint32_t contiguous = 0;  ///< all ids in [1, contiguous] seen
    std::set<std::uint32_t> sparse;
  };
  std::map<rpc::NodeId, Window> seen_;
};

/// Sender half: owns the unacked-chunk outbox and the control-mailbox
/// thread. One instance per node (providers and the requester alike).
class Retransmitter {
 public:
  /// Starts the control loop on `transport`'s kCtrlMailbox. The transport
  /// must have that mailbox open already and must outlive this object.
  Retransmitter(rpc::Transport& transport, const ReliabilityOptions& options,
                DataPlaneStats& stats);
  ~Retransmitter();

  Retransmitter(const Retransmitter&) = delete;
  Retransmitter& operator=(const Retransmitter&) = delete;

  /// Next chunk id on the link to `to` (starts at 1; 0 means untracked).
  /// Ids are allocated per destination so every receiver observes a gapless
  /// per-sender sequence and its dedup watermark can advance.
  std::uint32_t next_chunk_id(rpc::NodeId to);

  /// Registers a frame for retransmission until acked. Shares the caller's
  /// buffer by refcount — the outbox entry and the in-flight send are the
  /// same allocation, never a second copy.
  void track(const rpc::Address& to, std::uint32_t chunk_id,
             rpc::Frame frame);

  /// Drops every outbox entry destined to `to` right now — the fast-fail
  /// path when the controller declares the peer dead, instead of burning
  /// each entry's remaining rto/attempt schedule. Returns the number of
  /// entries cancelled (also accumulated in stats.retx_cancelled). Does NOT
  /// reset the link's chunk-id counter: ids stay monotone per link forever
  /// so a revived peer's dedup state can never swallow fresh frames.
  std::size_t cancel_to(rpc::NodeId to);

  /// Jumps this sender's outgoing chunk-id counters to at least `base` on
  /// every link. Called by a (re)joining node when its adoption announces a
  /// new id incarnation base: peers fast-forward their dedup to `base`
  /// (ChunkDedup::assume), so outgoing ids must restart above it.
  void set_id_base(std::uint32_t base);

  /// True when every tracked frame has been acked or abandoned.
  bool idle() const;

  /// Unacked outbox entries per destination node — the ops plane's
  /// reliable.outbox_depth gauge source. Every peer ever tracked is listed
  /// (drained peers at 0), so a sampler overwrites stale gauges instead of
  /// leaving the last nonzero depth on /metrics forever. Advisory: the
  /// depths move as soon as the lock is released.
  std::map<rpc::NodeId, std::size_t> outbox_depth_by_peer() const;

  /// Stops the control loop and joins its thread. Unacked entries are
  /// dropped. Idempotent; also run by the destructor.
  void stop();

 private:
  struct Entry {
    rpc::Address to;
    rpc::Frame frame;  ///< shared with the original send (refcount, no copy)
    int attempts = 1;  ///< the original send counts as the first attempt
    std::chrono::steady_clock::time_point last_send;
  };

  /// Outbox key: chunk ids are unique per link, not per node.
  using LinkChunk = std::pair<rpc::NodeId, std::uint32_t>;

  /// A frame staged for resend under mu_ and sent after releasing it.
  struct Resend {
    rpc::Address to;
    rpc::Frame frame;
  };

  void ctrl_loop();
  Resend stage_resend_locked(Entry& entry);

  rpc::Transport& transport_;
  const ReliabilityOptions options_;
  DataPlaneStats& stats_;

  mutable std::mutex mu_;
  std::map<LinkChunk, Entry> outbox_;
  std::set<rpc::NodeId> tracked_peers_;  ///< ever-tracked, for 0-depth rows
  std::map<rpc::NodeId, std::uint32_t> next_id_;
  std::uint32_t id_base_ = 0;  ///< incarnation floor for all outgoing ids
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace de::runtime
