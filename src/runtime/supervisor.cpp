#include "runtime/supervisor.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace de::runtime {

Supervisor::Supervisor(Options options)
    : state_(std::make_unique<State>()) {
  state_->options = std::move(options);
}

Supervisor::~Supervisor() { join_all(); }

void Supervisor::spawn(std::string name, int node,
                       std::function<void()> body) {
  State* state = state_.get();
  std::lock_guard lk(state->mu);
  state->threads.emplace_back([state, name = std::move(name), node,
                               body = std::move(body)] {
    obs::bind_thread(name, node);
    int used = 0;
    auto window_start = std::chrono::steady_clock::now();
    for (;;) {
      try {
        body();
        return;
      } catch (...) {
        const auto now = std::chrono::steady_clock::now();
        const double since_s =
            std::chrono::duration<double>(now - window_start).count();
        {
          std::lock_guard slk(state->mu);
          ++state->stats.failures;
        }
        // A thread that survived past the window earns its budget back; a
        // tight crash loop keeps burning the same one.
        if (since_s > state->options.restart_window_s) {
          used = 0;
          window_start = now;
        }
        if (used < state->options.max_restarts) {
          ++used;
          std::lock_guard slk(state->mu);
          ++state->stats.restarts;
          continue;
        }
        {
          std::lock_guard slk(state->mu);
          ++state->stats.escalations;
        }
        if (state->options.escalate) state->options.escalate();
        return;
      }
    }
  });
}

void Supervisor::join_all() {
  if (state_ == nullptr) return;  // moved-from
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(state_->mu);
    threads.swap(state_->threads);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

Supervisor::Stats Supervisor::stats() const {
  std::lock_guard lk(state_->mu);
  return state_->stats;
}

}  // namespace de::runtime
