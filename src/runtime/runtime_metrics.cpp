#include "runtime/runtime_metrics.hpp"

namespace de::runtime {

void fold_data_plane_metrics(const DataPlaneStats& stats,
                             obs::MetricsRegistry& registry) {
  registry.counter(kMetricMessages).set(stats.messages.load());
  registry.counter(kMetricPayloadBytes).set(stats.bytes.load());
  registry.counter(kMetricWireBytes).set(stats.wire_bytes.load());
  registry.counter(kMetricBytesCopied).set(stats.bytes_copied.load());
  registry.counter(kMetricFrameAllocs).set(stats.frame_allocs.load());
  registry.counter(kMetricRetransmits).set(stats.retransmits.load());
  registry.counter(kMetricAcks).set(stats.acks.load());
  registry.counter(kMetricDupsDropped).set(stats.duplicates_dropped.load());
  registry.counter(kMetricNacks).set(stats.nacks.load());
  registry.counter(kMetricRecvTimeouts).set(stats.recv_timeouts.load());
  registry.counter(kMetricChunksAbandoned)
      .set(stats.chunks_abandoned.load());
  registry.counter(kMetricRetxCancelled).set(stats.retx_cancelled.load());
  registry.counter(kMetricImagesCancelled)
      .set(stats.images_cancelled.load());
  registry.counter(kMetricLanesEvicted).set(stats.lanes_evicted.load());
}

void sample_queue_depths(const rpc::Transport& transport,
                         const Retransmitter* rtx,
                         obs::MetricsRegistry& registry) {
  static constexpr struct {
    rpc::MailboxId id;
    const char* name;
  } kBoxes[] = {
      {rpc::kDataMailbox, "data"},
      {rpc::kCtrlMailbox, "ctrl"},
      {rpc::kTelemetryMailbox, "telemetry"},
      {rpc::kServeMailbox, "serve"},
  };
  for (const auto& box : kBoxes) {
    registry
        .gauge(std::string(kMetricMailboxDepth) + "{name=" + box.name + "}")
        .set(static_cast<double>(transport.pending(box.id)));
  }
  if (rtx != nullptr) {
    for (const auto& [node, depth] : rtx->outbox_depth_by_peer()) {
      registry
          .gauge(std::string(kMetricOutboxDepth) +
                 "{node=" + std::to_string(node) + "}")
          .set(static_cast<double>(depth));
    }
  }
}

}  // namespace de::runtime
