// Blocking MPSC mailbox used by the in-process cluster workers
// (the "data receiving" thread role of paper §V-A).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace de::runtime {

/// Outcome of a bounded wait on a mailbox: a message, nothing within the
/// deadline, or the mailbox closed (and drained) underneath the waiter.
enum class MailboxRecvStatus { kOk, kTimeout, kClosed };

template <typename T>
class Mailbox {
 public:
  void send(T value) {
    {
      std::lock_guard lk(mu_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until a message arrives or the mailbox is closed (nullopt).
  std::optional<T> receive() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Waits up to `timeout` for a message. kTimeout leaves `out` untouched;
  /// kClosed means the mailbox closed with nothing left to drain. Queued
  /// messages are still delivered after close() (kOk), matching receive().
  MailboxRecvStatus receive_for(T& out, std::chrono::milliseconds timeout) {
    std::unique_lock lk(mu_);
    cv_.wait_for(lk, timeout, [this] { return closed_ || !queue_.empty(); });
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      return MailboxRecvStatus::kOk;
    }
    return closed_ ? MailboxRecvStatus::kClosed : MailboxRecvStatus::kTimeout;
  }

  /// Non-blocking poll: nullopt when the queue is empty (or closed and
  /// drained). Used by pipelined serving loops that interleave mailboxes.
  std::optional<T> try_receive() {
    std::lock_guard lk(mu_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  std::size_t pending() const {
    std::lock_guard lk(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace de::runtime
