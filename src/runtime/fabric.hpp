// Cluster fabric wiring shared by run_distributed{,_tcp} and serve_stream:
// one transport endpoint per node (providers 0..n-1, requester at index n),
// data + control mailboxes opened, TCP nodes fully meshed over loopback —
// plus the provider-thread spawner with its exception barrier. When a
// FaultSpec is given, every endpoint is wrapped in a FaultInjectingTransport
// so all inter-node traffic crosses the degraded "wire". Protocol logic
// lives in worker.cpp; this file only builds and tears down the plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rpc/fault_transport.hpp"
#include "rpc/inproc_transport.hpp"
#include "rpc/shaped_transport.hpp"
#include "rpc/tcp_transport.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/worker.hpp"

namespace de::runtime {

/// Owns the per-node transports of one cluster run.
struct ClusterFabric {
  std::unique_ptr<rpc::InProcFabric> inproc;
  std::vector<std::unique_ptr<rpc::TcpTransport>> tcp_nodes;
  /// Fault decorators, one per node, when the run was built with faults.
  std::vector<std::unique_ptr<rpc::FaultInjectingTransport>> faulty;
  /// Shaping decorators, one per node, when the run was built with shaping.
  std::vector<std::unique_ptr<rpc::ShapedTransport>> shaped;
  std::vector<rpc::Transport*> endpoints;  ///< size n_devices + 1
  /// Each node's clock origin (process-steady micros at fabric build, one
  /// sample per node in node order). Every node reports its telemetry
  /// timestamps relative to its own origin, so in-process "nodes" genuinely
  /// exercise the trace-merge clock-offset estimation instead of trivially
  /// sharing one clock.
  std::vector<std::int64_t> node_origin_us;

  rpc::Transport& requester() { return *endpoints.back(); }
  /// Node `i`'s achieved-rate source — its shaper when the fabric is
  /// shaped, null otherwise (an unshaped loopback link has no meaningful
  /// rate to report).
  rpc::LinkRateSampler* sampler(rpc::NodeId node) {
    return shaped.empty() ? nullptr
                          : shaped[static_cast<std::size_t>(node)].get();
  }
  void shutdown_all();

  /// Chaos-schedule node death/revival (fault-decorated fabrics only):
  /// severs/restores both halves of node's connectivity — its own outgoing
  /// links (kill_node on its transport) and every peer's link toward it.
  /// Composable: killing/reviving one node never disturbs the manual link
  /// state of another.
  void set_node_down(rpc::NodeId node, bool down);
};

/// Builds the fabric for `n_devices` providers plus the requester. TCP nodes
/// bind ephemeral loopback ports and learn the full peer directory; every
/// node's data, control, and telemetry mailboxes are open before this
/// returns, so no scatter can race mailbox creation. With `faults` set every
/// endpoint is wrapped in a FaultInjectingTransport sharing that spec (fault
/// decisions still differ per link — the hash keys on src/dst node ids).
/// With `shaping` set every endpoint is additionally wrapped (outermost) in
/// a ShapedTransport, all sharing one trace-time origin so the regime
/// switches of every link line up. In kSerialCopy mode TCP endpoints run
/// their legacy per-frame I/O, so the A/B baseline is the pre-change plane
/// down to the syscalls.
ClusterFabric make_fabric(int n_devices, bool use_tcp,
                          const rpc::FaultSpec* faults = nullptr,
                          DataPlaneMode mode = DataPlaneMode::kOverlapZeroCopy,
                          const rpc::ShapingSpec* shaping = nullptr);

/// One provider thread per device, run under a Supervisor. An exception
/// escaping a provider would std::terminate the process; with the default
/// max_restarts = 0 the supervisor escalates immediately by shutting the
/// whole fabric down so blocked counterparties fail in an orderly way (the
/// classic barrier). Chaos/membership runs pass max_restarts > 0 so a
/// provider that starved out while its node was "dead" is restarted with a
/// fresh loop instead. With `telemetry_every` > 0 each provider publishes a
/// kTelemetry frame to the requester's telemetry mailbox every that many
/// images (link rates come from the node's shaper when the fabric is
/// shaped); with `hooks_extra.heartbeat_ms` > 0 it additionally publishes
/// periodic kHeartbeat lease renewals there.
Supervisor spawn_providers(
    ClusterFabric& fabric, const cnn::CnnModel& model,
    const sim::RawStrategy& strategy,
    const std::vector<cnn::ConvWeights>& weights, const TransferPlan& plan,
    int n_images, DataPlaneStats& stats,
    const ReliabilityOptions& reliability = {},
    const cnn::ExecContext& exec = {},
    DataPlaneMode mode = DataPlaneMode::kOverlapZeroCopy,
    int telemetry_every = 0, int heartbeat_ms = 0, int max_restarts = 0);

/// Multi-tenant variant: each provider runs provider_loop_multi over the
/// shared tenant registry `fleet` (no seed strategy — epoch lanes arrive by
/// stream-tagged kReconfigure; `fleet` must outlive the threads). Always
/// streaming: the front door releases the providers with kShutdown.
Supervisor spawn_providers_multi(
    ClusterFabric& fabric, int n_devices, std::span<const TenantModel> fleet,
    DataPlaneStats& stats, const ReliabilityOptions& reliability = {},
    const cnn::ExecContext& exec = {},
    DataPlaneMode mode = DataPlaneMode::kOverlapZeroCopy,
    int telemetry_every = 0, int heartbeat_ms = 0, int max_restarts = 0);

}  // namespace de::runtime
