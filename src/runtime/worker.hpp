// Transport-facing event loops of the cluster data plane (paper §V-A):
// the provider worker (split-compute + halo redistribution) and the
// requester's scatter/gather halves. All chunk traffic is wire-encoded, so
// the same loops run unchanged over shared memory or TCP.
#pragma once

#include <atomic>
#include <map>
#include <vector>

#include "rpc/transport.hpp"
#include "rpc/wire.hpp"
#include "runtime/transfer_plan.hpp"

namespace de::runtime {

/// Chunk-message accounting shared by all nodes of one run.
struct DataPlaneStats {
  std::atomic<int> messages{0};
  std::atomic<Bytes> bytes{0};  ///< tensor payload bytes (not frame bytes)
};

/// The data-plane address of a cluster node.
inline rpc::Address data_addr(rpc::NodeId node) {
  return rpc::Address{node, rpc::kDataMailbox};
}

/// Encodes and posts a chunk, updating `stats`.
void post_chunk(rpc::Transport& transport, const rpc::Address& to,
                const rpc::ChunkMsg& msg, DataPlaneStats& stats);

/// Provider event loop for device `i`: executes its split-parts image after
/// image, pulling inputs from the data mailbox and pushing halos/gathers.
/// Processes exactly `n_images` images when n_images >= 0; with
/// n_images < 0 it serves until a kShutdown frame arrives or the transport
/// shuts down. Malformed frames are dropped.
void provider_loop(rpc::Transport& transport, int i, const cnn::CnnModel& model,
                   const sim::RawStrategy& strategy,
                   const std::vector<cnn::ConvWeights>& weights,
                   const TransferPlan& plan, int n_images,
                   DataPlaneStats& stats);

/// Requester half: scatters image `seq`'s volume-0 inputs to the providers.
void scatter_image(rpc::Transport& transport, int seq, const cnn::Tensor& input,
                   const TransferPlan& plan, DataPlaneStats& stats);

/// Requester half: collects the holders' kGather chunks of image `seq` into
/// `output` (sized from `model`). Chunks of other images park in `stash`
/// (keyed by seq). Returns false if the transport shut down mid-gather.
bool gather_image(rpc::Transport& transport, int seq, const cnn::CnnModel& model,
                  const TransferPlan& plan,
                  std::map<int, std::vector<rpc::ChunkMsg>>& stash,
                  cnn::Tensor& output);

}  // namespace de::runtime
