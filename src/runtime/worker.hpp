// Transport-facing event loops of the cluster data plane (paper §V-A):
// the provider worker (split-compute + halo redistribution) and the
// requester's scatter/gather halves. All chunk traffic is wire-encoded, so
// the same loops run unchanged over shared memory or TCP.
//
// Two data-plane variants share these loops (DataPlaneMode):
//  * kOverlapZeroCopy (default) — chunks are encoded straight out of the
//    source tensor into arena-recycled frames and blitted straight out of
//    the received frame bytes (<= 2 userspace copies per halo byte), and
//    each part computes under the halo-first band schedule: boundary rows
//    first, halos posted from a dedicated sender thread while the interior
//    still computes, final-volume output streamed to the requester band by
//    band.
//  * kSerialCopy — the PR-3 path (whole-part compute, slice/encode/decode/
//    blit copies, sends from the compute thread), kept as the in-run A/B
//    baseline for bench/runtime_stream and the bit-exactness conformance
//    tests. Both variants produce bit-identical outputs: bands are row
//    partitions of the same plan and the engine is order-exact per pixel.
//
// With ReliabilityOptions::enabled the loops speak the wire-v2 reliability
// protocol (DESIGN.md §fault-model): every chunk is tracked by a
// Retransmitter until acked, receivers dedup and ack, data waits are
// bounded by recv_timeout_ms with nack rounds in between, and a starved
// wait fails loudly after max_recv_timeouts rounds instead of hanging.
//
// Both loops are *epoch-aware* (DESIGN.md §control-plane): the strategy a
// stream starts with is only epoch 0. A kReconfigure frame announces
// "epoch E serves images from_seq onward"; every chunk carries its image's
// epoch tag, a provider that meets a tag it does not know yet parks the
// chunk and waits for the announcement (it is already in flight on the same
// mailbox), and images of the old epoch complete under the old plan while
// the new epoch's images are already being scattered — a live, drain-free,
// bit-exact cutover.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "cnn/exec_engine.hpp"
#include "rpc/frame.hpp"
#include "rpc/shaped_transport.hpp"
#include "rpc/transport.hpp"
#include "rpc/wire.hpp"
#include "runtime/epoch.hpp"
#include "runtime/reliable.hpp"
#include "runtime/transfer_plan.hpp"

namespace de::runtime {

/// Which chunk path the workers run (see file header).
enum class DataPlaneMode {
  kSerialCopy,      ///< PR-3 baseline: barrier schedule, copying chunk path
  kOverlapZeroCopy, ///< halo-first bands + zero-copy frames (default)
};

/// A received chunk: the owning frame plus the validated borrowed view into
/// it (frame buffers are address-stable, so the pair may be moved/stashed).
struct RxChunk {
  rpc::Frame frame;
  rpc::ChunkView view;
};

/// The data-plane address of a cluster node.
inline rpc::Address data_addr(rpc::NodeId node) {
  return rpc::Address{node, rpc::kDataMailbox};
}

/// The control address (acks/nacks) of a cluster node.
inline rpc::Address ctrl_addr(rpc::NodeId node) {
  return rpc::Address{node, rpc::kCtrlMailbox};
}

/// Encodes and posts a chunk, updating `stats`. With `rtx` set the chunk is
/// stamped (from_node, chunk_id) and tracked for retransmission until acked.
void post_chunk(rpc::Transport& transport, const rpc::Address& to,
                rpc::ChunkMsg msg, DataPlaneStats& stats,
                Retransmitter* rtx = nullptr);

/// Encodes and posts an epoch announcement, updating `stats`. With `rtx`
/// set the frame is stamped and tracked exactly like a tensor chunk (the
/// receiver acks it on the same path), so a reconfigure survives the same
/// faults the data it gates does.
void post_reconfigure(rpc::Transport& transport, const rpc::Address& to,
                      rpc::ReconfigureMsg msg, DataPlaneStats& stats,
                      Retransmitter* rtx = nullptr);

/// Control-plane publishing knobs of one provider (all off by default).
struct TelemetryHooks {
  /// Per-link achieved-rate source (the node's ShapedTransport decorator);
  /// may be null — telemetry then reports compute times only.
  rpc::LinkRateSampler* links = nullptr;
  /// Publish a kTelemetry frame to the requester's telemetry mailbox every
  /// this many finished images (0 = never).
  int every_images = 0;
  /// This node's clock origin (process-steady micros at node creation).
  /// Telemetry reports carry `obs::now_us() - clock_origin_us` as the
  /// node-local steady clock (wire v4), feeding the trace-merge clock-offset
  /// estimation (src/obs/trace_export.hpp).
  std::int64_t clock_origin_us = 0;
  /// Publish a kHeartbeat lease renewal to `heartbeat_to`'s telemetry
  /// mailbox every this many milliseconds (0 = never). Heartbeats run on a
  /// small dedicated thread so they keep flowing while the loop blocks in a
  /// receive or a long compute — a busy node is not a dead node.
  int heartbeat_ms = 0;
  /// Destination of the heartbeats (the collector node). kNilNode on the
  /// single-tenant loop means "derive from the plan's requester node"; the
  /// multi-tenant loop has no plan of its own, so it must be set explicitly
  /// whenever heartbeat_ms > 0.
  rpc::NodeId heartbeat_to = rpc::kNilNode;
};

/// Provider event loop for device `i`: executes its split-parts image after
/// image, pulling inputs from the data mailbox and pushing halos/gathers.
/// Processes exactly `n_images` images when n_images >= 0; with
/// n_images < 0 it serves until a kShutdown frame arrives or the transport
/// shuts down. Malformed frames are dropped. With reliability enabled the
/// provider owns a Retransmitter and, after a finite run, drains its outbox
/// (bounded by the attempt budget) before returning, so late acks/losses on
/// its last chunks are still recovered. In kOverlapZeroCopy mode the
/// provider additionally owns a frame arena, a ChunkSender thread, and the
/// per-volume halo-first schedules (built once per epoch).
///
/// `strategy`/`plan` seed epoch 0; kReconfigure frames append later epochs
/// at image boundaries. A device idle under the current epoch keeps
/// listening (a later epoch may activate it) instead of returning.
void provider_loop(rpc::Transport& transport, int i, const cnn::CnnModel& model,
                   const sim::RawStrategy& strategy,
                   const std::vector<cnn::ConvWeights>& weights,
                   const TransferPlan& plan, int n_images,
                   DataPlaneStats& stats,
                   const ReliabilityOptions& reliability = {},
                   const cnn::ExecContext& exec = {},
                   DataPlaneMode mode = DataPlaneMode::kOverlapZeroCopy,
                   const TelemetryHooks& telemetry = {});

/// One model a multi-tenant provider can serve (not owned; must outlive the
/// provider threads). A reconfigure's `model_id` indexes this registry.
struct TenantModel {
  const cnn::CnnModel* model = nullptr;
  const std::vector<cnn::ConvWeights>* weights = nullptr;
};

/// Multi-tenant provider event loop (DESIGN.md §serving-front-door): serves
/// any number of concurrent client streams, each with its own epoch lane.
/// The loop starts with no lanes at all — a kReconfigure tagged with a
/// (stream, model_id) pair creates the lane against `fleet[model_id]` — and
/// processes images in *global* fleet sequence order: a kDispatch frame
/// announces which stream owns each global seq (sent by the front door
/// before that image's scatter), the provider resolves the owner's lane and
/// runs the image under it, and chunks of later seqs stash exactly like the
/// single-tenant loop. Always streaming: runs until kShutdown or transport
/// close. Weight packing is cached per tenant model, so interleaved streams
/// of different models pay the packing cost once each, not per image.
void provider_loop_multi(rpc::Transport& transport, int i,
                         std::span<const TenantModel> fleet,
                         DataPlaneStats& stats,
                         const ReliabilityOptions& reliability = {},
                         const cnn::ExecContext& exec = {},
                         DataPlaneMode mode = DataPlaneMode::kOverlapZeroCopy,
                         const TelemetryHooks& telemetry = {});

/// Per-image reliability events observed by the requester while gathering.
struct ImageRetryStats {
  /// Bounded data waits that expired; each expiry also broadcast one nack
  /// round to the providers.
  std::int64_t recv_timeouts = 0;
};

/// Requester-side state reused across the images of one run or stream. The
/// plan passed at construction seeds epoch 0; push_epoch() appends later
/// regimes (and announces them to every provider). The multi-tenant
/// constructor instead starts with no epoch lanes at all — the front door
/// opens one per admitted stream with push_stream_epoch(), and every global
/// fleet seq is bound to its owning stream by dispatch_image() before that
/// image's scatter.
struct RequesterContext {
  RequesterContext(rpc::Transport& transport_, const TransferPlan& plan_,
                   DataPlaneStats& stats_, ReliabilityOptions reliability_ = {},
                   DataPlaneMode mode_ = DataPlaneMode::kOverlapZeroCopy)
      : transport(transport_),
        epochs(EpochPlan{0, 0, {}, plan_}),
        stats(stats_),
        reliability(reliability_), mode(mode_),
        n_devices(plan_.n_devices) {}

  /// Multi-tenant front-door context over `n_devices_` shared providers.
  /// The legacy single-lane `epochs` table is unused in this mode.
  RequesterContext(rpc::Transport& transport_, int n_devices_,
                   DataPlaneStats& stats_, ReliabilityOptions reliability_ = {},
                   DataPlaneMode mode_ = DataPlaneMode::kOverlapZeroCopy)
      : transport(transport_),
        epochs(EpochPlan{}),
        stats(stats_),
        reliability(reliability_), mode(mode_),
        multi(true), n_devices(n_devices_) {}

  rpc::Transport& transport;
  EpochTable epochs;
  DataPlaneStats& stats;
  ReliabilityOptions reliability;
  DataPlaneMode mode;
  bool multi = false;    ///< multi-tenant mode: lanes/owner, not `epochs`
  int n_devices = 0;
  Retransmitter* rtx = nullptr;  ///< set by the run owner when reliable
  ChunkDedup dedup;
  /// Scatter frames are encoded straight from the input tensor into these
  /// recycled buffers (kOverlapZeroCopy).
  rpc::FrameArena arena;
  /// Gather chunks of images not yet collected, keyed by seq.
  std::map<int, std::vector<RxChunk>> stash;
  /// Multi-tenant mode: one epoch lane per admitted stream, and the global
  /// seq -> owning stream binding established by dispatch_image().
  std::map<int, EpochTable> lanes;
  std::map<int, int> owner;
  /// Epoch ids are allocated globally across lanes, so each lane's history
  /// stays id-monotone and two lanes never share an id. Starts at 1: epoch
  /// 0 is the legacy implicit seed and the wire codec rejects it in a
  /// kReconfigure announcement.
  int next_epoch = 1;
  /// Images below this global seq were voided by a membership change (their
  /// inputs re-dispatched under fresh seqs): their late gather chunks are
  /// silently dropped instead of failing the stream.
  int cancel_below = 0;
  /// Polled during bounded gather waits (may be empty). Returning true
  /// interrupts the gather with GatherStatus::kInterrupted so the owner can
  /// run membership recovery instead of burning the starvation budget on
  /// chunks a dead device will never send.
  std::function<bool()> interrupt;
};

/// Live strategy swap: registers `strategy` as the next epoch, effective
/// from image `from_seq` (which must not have been scattered yet), and
/// posts the kReconfigure announcement to every provider — *before* any
/// epoch-tagged traffic of the new regime, so per-sender FIFO (or, under
/// faults, retransmission + the receivers' park-unknown-epochs rule) makes
/// the cutover race-free. Returns the new epoch id.
int push_epoch(RequesterContext& ctx, const cnn::CnnModel& model,
               const sim::RawStrategy& strategy, int from_seq);

/// Multi-tenant half of push_epoch: registers `strategy` as stream
/// `stream`'s next epoch (creating the stream's lane on first call) and
/// announces it to every provider tagged with (stream, model_id), so
/// providers bind the lane to `fleet[model_id]`. `from_seq` is the *global*
/// fleet seq the epoch takes effect at — it must not have been dispatched
/// yet. Swapping one stream never touches any other stream's lane. Returns
/// the new (globally allocated) epoch id.
int push_stream_epoch(RequesterContext& ctx, int stream, int model_id,
                      const cnn::CnnModel& model,
                      const sim::RawStrategy& strategy, int from_seq);

/// Multi-tenant: binds global fleet seq `seq` to `stream` and broadcasts
/// the kDispatch announcement to every provider. Must precede the image's
/// scatter_image call (per-sender FIFO, or tracked retransmission under
/// faults, then guarantees providers learn the owner before they need it).
void dispatch_image(RequesterContext& ctx, int stream, int seq);

/// Drops history no ungathered image references: the epoch table (each
/// lane's, in multi mode) and the seq->stream dispatch records below
/// `watermark`.
void retire_below(RequesterContext& ctx, int watermark);

/// Announces a membership change to provider `to`, tracked for
/// retransmission like a reconfigure when ctx.rtx is set. Callers send it to
/// every *surviving* provider (a dead node's copy would only churn the
/// retransmit budget) before the recovery epoch's kReconfigure — per-sender
/// FIFO then guarantees providers void the cancelled images before any
/// re-dispatched traffic of the new regime arrives.
void post_membership(RequesterContext& ctx, rpc::NodeId to,
                     rpc::MembershipMsg msg);

/// Announces that stream `msg.stream` is closed and drained below
/// `msg.below_seq`: multi-tenant providers evict the stream's epoch lane
/// once their cursor passes the watermark. Tracked like a reconfigure.
void post_lane_evict(RequesterContext& ctx, rpc::NodeId to,
                     rpc::LaneEvictMsg msg);

/// Applies a membership change to the requester's own reliability state:
/// cancels pending retransmissions to the dead nodes (fast-fail — their
/// budget is released immediately), fast-forwards the dedup window for each
/// joiner's new chunk-id incarnation, raises `cancel_below`, and drops
/// stashed gather chunks of the voided images. Returns the number of
/// retransmission entries cancelled (also counted in stats.retx_cancelled).
std::size_t apply_membership_local(RequesterContext& ctx,
                                   const rpc::MembershipMsg& msg);

/// Requester half: scatters image `seq`'s volume-0 inputs to the providers
/// under the epoch serving `seq`.
void scatter_image(RequesterContext& ctx, int seq, const cnn::Tensor& input);

/// How a gather ended (see gather_image).
enum class GatherStatus {
  kOk,           ///< output complete (and bit-exact by construction)
  kFailed,       ///< transport shut down, geometry breach, or starved out
  kInterrupted,  ///< ctx.interrupt() asked the owner to intervene
};

/// Requester half: collects the holders' kGather chunks of image `seq` into
/// `output` (sized from `model`). Completion is counted by output-row
/// coverage, so one whole-part chunk per holder (serial mode) and streamed
/// gather bands (overlap mode) both finish exactly when every row arrived.
/// Chunks of other images park in the context's stash; chunks of images
/// below ctx.cancel_below are dropped (late output of a voided image).
/// Returns kFailed if the transport shut down mid-gather, a peer sent
/// plan-mismatched chunks, or (reliable mode) the gather starved past the
/// timeout budget; kInterrupted when ctx.interrupt() reports pending
/// membership work (the image stays gatherable — call again or cancel it).
/// `retry`, when given, receives this image's timeout/nack counts.
GatherStatus gather_image(RequesterContext& ctx, int seq,
                          const cnn::CnnModel& model, cnn::Tensor& output,
                          ImageRetryStats* retry = nullptr);

}  // namespace de::runtime
