// Static transfer plan of a strategy: which output rows each device produces
// per volume, which input rows it needs, and how many inbound chunk messages
// it should expect. Shared by the in-process and TCP data planes and by the
// pipelined serving loop — the plan depends only on the strategy, never on
// the transport.
#pragma once

#include <vector>

#include "cnn/conv_exec.hpp"
#include "rpc/address.hpp"
#include "sim/exec_sim.hpp"

namespace de::runtime {

struct TransferPlan {
  int n_devices = 0;
  /// parts[l][i]: output rows device i produces for volume l (maybe empty).
  std::vector<std::vector<cnn::RowInterval>> parts;
  /// needs[l][i]: volume-l input rows device i requires.
  std::vector<std::vector<cnn::RowInterval>> needs;
  /// expected[l][i]: inbound chunk messages for volume l at device i.
  std::vector<std::vector<int>> expected;

  int num_volumes() const { return static_cast<int>(parts.size()); }
  /// The requester's node id on the transport (providers are 0..n-1).
  rpc::NodeId requester_node() const { return n_devices; }
  /// Devices holding a non-empty share of the final volume (gather senders).
  int holders_of_last() const;
  /// True when device i ever computes or receives anything for one image.
  bool device_active(int i) const;
};

/// Validates `strategy` against `model` and builds the plan (same interval
/// algebra as the event simulator).
TransferPlan build_transfer_plan(const cnn::CnnModel& model,
                                 const sim::RawStrategy& strategy,
                                 int n_devices);

/// One outbound chunk of a (volume, device) part under the halo-first
/// schedule: destination node (a provider for halos, the requester for
/// gather bands), the absolute output rows it carries, and the index of the
/// last compute band it waits on — the chunk may ship the moment bands
/// [0, ready_after_band] are done.
struct OutboundChunk {
  rpc::NodeId to = rpc::kNilNode;
  cnn::RowInterval rows;
  int ready_after_band = 0;
};

/// Halo-first compute/send schedule of parts[l][i]. `bands` is a disjoint
/// row partition of the part in compute order: rows some neighbor's next-
/// volume need intersects ("boundary") first, interior rows last, so every
/// halo chunk is in flight while the interior still computes. For the final
/// volume the part instead streams to the requester as roughly equal gather
/// bands (each its own OutboundChunk). Executing the bands in order is
/// bit-exact with one whole-part call — bands only re-cut the row loop.
/// Depends only on the plan, so it is computed once per run, never per
/// image. Empty parts yield an empty schedule.
struct PartSchedule {
  std::vector<cnn::RowInterval> bands;
  std::vector<OutboundChunk> sends;
};

/// `max_gather_bands` caps the final volume's streamed bands (small parts
/// collapse to one band — a band under ~4 rows is all header overhead).
PartSchedule plan_part_schedule(const TransferPlan& plan, int l, int i,
                                int max_gather_bands = 4);

/// Shared precondition checks of every cluster entry point: one weight
/// entry per layer, input extents matching the model.
void validate_cluster_inputs(const cnn::CnnModel& model,
                             const std::vector<cnn::ConvWeights>& weights,
                             const cnn::Tensor& input);

/// Copies rows [src_begin, src_end) (absolute) from `src` (whose row 0 is
/// absolute row `src_offset`) into `dst` (whose row 0 is `dst_offset`).
void blit_rows(const cnn::Tensor& src, int src_offset, int src_begin,
               int src_end, cnn::Tensor& dst, int dst_offset);

/// Extracts absolute rows [begin, end) of `src` whose row 0 is `src_offset`.
cnn::Tensor slice_rows(const cnn::Tensor& src, int src_offset, int begin,
                       int end);

}  // namespace de::runtime
