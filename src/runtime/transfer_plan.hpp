// Static transfer plan of a strategy: which output rows each device produces
// per volume, which input rows it needs, and how many inbound chunk messages
// it should expect. Shared by the in-process and TCP data planes and by the
// pipelined serving loop — the plan depends only on the strategy, never on
// the transport.
#pragma once

#include <vector>

#include "cnn/conv_exec.hpp"
#include "rpc/address.hpp"
#include "sim/exec_sim.hpp"

namespace de::runtime {

struct TransferPlan {
  int n_devices = 0;
  /// parts[l][i]: output rows device i produces for volume l (maybe empty).
  std::vector<std::vector<cnn::RowInterval>> parts;
  /// needs[l][i]: volume-l input rows device i requires.
  std::vector<std::vector<cnn::RowInterval>> needs;
  /// expected[l][i]: inbound chunk messages for volume l at device i.
  std::vector<std::vector<int>> expected;

  int num_volumes() const { return static_cast<int>(parts.size()); }
  /// The requester's node id on the transport (providers are 0..n-1).
  rpc::NodeId requester_node() const { return n_devices; }
  /// Devices holding a non-empty share of the final volume (gather senders).
  int holders_of_last() const;
  /// True when device i ever computes or receives anything for one image.
  bool device_active(int i) const;
};

/// Validates `strategy` against `model` and builds the plan (same interval
/// algebra as the event simulator).
TransferPlan build_transfer_plan(const cnn::CnnModel& model,
                                 const sim::RawStrategy& strategy,
                                 int n_devices);

/// Shared precondition checks of every cluster entry point: one weight
/// entry per layer, input extents matching the model.
void validate_cluster_inputs(const cnn::CnnModel& model,
                             const std::vector<cnn::ConvWeights>& weights,
                             const cnn::Tensor& input);

/// Copies rows [src_begin, src_end) (absolute) from `src` (whose row 0 is
/// absolute row `src_offset`) into `dst` (whose row 0 is `dst_offset`).
void blit_rows(const cnn::Tensor& src, int src_offset, int src_begin,
               int src_end, cnn::Tensor& dst, int dst_offset);

/// Extracts absolute rows [begin, end) of `src` whose row 0 is `src_offset`.
cnn::Tensor slice_rows(const cnn::Tensor& src, int src_offset, int begin,
                       int end);

}  // namespace de::runtime
