#include "runtime/chunk_sender.hpp"

#include <string>

#include "obs/trace.hpp"

namespace de::runtime {

ChunkSender::ChunkSender(rpc::Transport& transport) : transport_(transport) {
  thread_ = std::thread([this] { loop(); });
}

ChunkSender::~ChunkSender() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void ChunkSender::post(const rpc::Address& to, rpc::Frame frame,
                       Retransmitter* rtx, std::uint32_t chunk_id) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(Pending{to, std::move(frame), rtx, chunk_id});
  }
  cv_.notify_one();
}

void ChunkSender::drain() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && !sending_; });
}

void ChunkSender::loop() {
  obs::bind_thread("sender-" + std::to_string(transport_.local_node()),
                   transport_.local_node());
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    // Drain-before-stop: frames posted before the destructor still go out.
    if (queue_.empty()) return;
    Pending item = std::move(queue_.front());
    queue_.pop_front();
    sending_ = true;
    lk.unlock();  // the write may block; never hold the queue across it
    // Register for retransmission only now, next to the actual send, so
    // the rto clock starts when the frame hits the wire.
    if (item.rtx != nullptr) item.rtx->track(item.to, item.chunk_id, item.frame);
    {
      obs::SpanScope span(obs::Cat::kSenderWrite, -1, -1, -1,
                          static_cast<std::int64_t>(item.frame.size()));
      transport_.send(item.to, std::move(item.frame));
    }
    lk.lock();
    sending_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace de::runtime
