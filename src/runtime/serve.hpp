// Pipelined serving (paper §V-A streaming, but on the real data plane):
// the requester keeps up to K images in flight across the transport —
// scattering image seq+K while seq is still being computed — and reports the
// measured wall-clock images/second next to the event simulator's
// prediction for the same strategy. Providers run a shutdown-terminated
// stream loop, so image count is the requester's business alone.
#pragma once

#include <span>
#include <vector>

#include "net/network.hpp"
#include "runtime/cluster.hpp"
#include "sim/stream_sim.hpp"

namespace de::runtime {

struct ServeOptions {
  int inflight = 4;          ///< K: images concurrently in the pipeline
  bool use_tcp = false;      ///< loopback TCP instead of in-process transport
  bool keep_outputs = false; ///< retain every gathered output (tests)

  /// When both are set, `predicted_ips` is filled from sim::stream_images
  /// (sequential-stream semantics — the pipeline should beat it).
  const sim::ClusterLatency* latency = nullptr;
  const net::Network* network = nullptr;
};

struct ServeResult {
  int images = 0;
  Seconds wall_s = 0;        ///< first scatter -> last gather
  double measured_ips = 0;
  double predicted_ips = 0;  ///< 0 when no simulator inputs were given
  int messages_exchanged = 0;
  Bytes bytes_moved = 0;
  std::vector<cnn::Tensor> outputs;  ///< filled iff keep_outputs
};

/// Streams `inputs` through the cluster with `options.inflight` images in
/// flight. Every input must match the model's input extents.
ServeResult serve_stream(const cnn::CnnModel& model,
                         const sim::RawStrategy& strategy,
                         const std::vector<cnn::ConvWeights>& weights,
                         std::span<const cnn::Tensor> inputs, int n_devices,
                         const ServeOptions& options = {});

}  // namespace de::runtime
