// Pipelined serving (paper §V-A streaming, but on the real data plane):
// the requester keeps up to K images in flight across the transport —
// scattering image seq+K while seq is still being computed — and reports the
// measured wall-clock images/second next to the event simulator's
// prediction for the same strategy. Providers run a shutdown-terminated
// stream loop, so image count is the requester's business alone.
//
// With ServeOptions::faults the stream runs over a deterministically
// degraded fabric (drops/duplicates/delays/partitions) and the wire-v2
// reliability protocol keeps it bit-exact; per-image retry/timeout stats
// land in ServeResult::per_image, and a stream that genuinely cannot make
// progress (e.g. a link severed past the retransmit budget) fails loudly
// within a bounded time instead of hanging.
//
// The stream's strategy is only its *initial* strategy: scripted swaps
// (ServeOptions::swaps, tests) and an adaptive controller
// (ServeOptions::controller, closing the telemetry loop) both cut the
// stream over to new strategies mid-flight via epoch announcements — no
// pipeline drain, images in flight finish under the epoch that scattered
// them, and outputs stay bit-exact throughout (DESIGN.md §control-plane).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "obs/attribution.hpp"
#include "obs/trace_export.hpp"
#include "rpc/shaped_transport.hpp"
#include "runtime/cluster.hpp"
#include "runtime/worker.hpp"
#include "sim/stream_sim.hpp"

namespace de::ctrl {
class Controller;
}  // namespace de::ctrl

namespace de::obs {
class AdminServer;
}  // namespace de::obs

namespace de::runtime {

/// A pre-scripted strategy swap: cut over when image `at_image` is about to
/// be scattered (deterministic epoch boundaries for tests/benches).
struct ScriptedSwap {
  int at_image = 0;
  sim::RawStrategy strategy;
};

/// One event of a seeded chaos schedule: kill (or revive) device `node`
/// once `at_image` images have been *delivered*. Kills sever both halves of
/// the node's connectivity (ClusterFabric::set_node_down) — its heartbeats
/// stop arriving, the controller's lease lapses, and the membership
/// machinery must recover every in-flight image without corruption; revives
/// restore the links, and the node is re-adopted as a fresh joiner at the
/// next lease poll. Keyed on delivered count so schedules are deterministic
/// under any timing.
struct ChaosEvent {
  int at_image = 0;
  rpc::NodeId node = rpc::kNilNode;
  bool kill = true;  ///< false = revive (rejoin as a fresh joiner)
};

struct ServeOptions {
  int inflight = 4;          ///< K: images concurrently in the pipeline
  bool use_tcp = false;      ///< loopback TCP instead of in-process transport
  bool keep_outputs = false; ///< retain every gathered output (tests)

  /// Reliability protocol knobs; must be enabled when `faults` is set.
  ReliabilityOptions reliability;
  /// Fault plan applied to every node's sends (not owned; may be null).
  const rpc::FaultSpec* faults = nullptr;

  /// Conv/pool engine of the provider workers (bit-exact either way; the
  /// fast default is what makes measured IPS track what the hardware allows).
  cnn::ExecContext exec = cnn::ExecContext::fast_shared();

  /// Chunk path: halo-first zero-copy (default) or the PR-3 serial copying
  /// baseline — bit-exact either way; bench/runtime_stream A/Bs the two in
  /// one run.
  DataPlaneMode data_plane = DataPlaneMode::kOverlapZeroCopy;

  /// When both are set, `predicted_ips` is filled from sim::stream_images
  /// (sequential-stream semantics — the pipeline should beat it). A fault
  /// plan is mirrored into the simulator's analytic loss model so the
  /// prediction stays comparable to the degraded measurement.
  const sim::ClusterLatency* latency = nullptr;
  const net::Network* network = nullptr;

  /// Trace-driven per-link pacing of every endpoint (not owned; may be
  /// null). This is what makes a loopback fabric exhibit the Fig. 4/12
  /// bandwidth regimes the adaptive control plane reacts to.
  const rpc::ShapingSpec* shaping = nullptr;

  /// Deterministic mid-stream strategy swaps, sorted by at_image (tests
  /// and benches; applied by the requester at exact image boundaries).
  std::vector<ScriptedSwap> swaps;

  /// Adaptive controller (not owned; may be null). serve_stream starts it
  /// on the requester's transport, polls it between images, and turns its
  /// decisions into epochs. Implies telemetry publishing (see below).
  ctrl::Controller* controller = nullptr;

  /// Providers publish a kTelemetry frame every this many images
  /// (0 = off, unless a controller is set — then it defaults to 1).
  int telemetry_every = 0;

  /// Trace collection (not owned; may be null). When set, serve_stream
  /// snapshots the TraceRecorder into `trace->dump` at end of stream, fills
  /// `trace->node_origin_us` from the fabric, and feeds every received
  /// kTelemetry steady-clock sample into `trace->sync` — everything
  /// obs::merge_capture needs for one cross-node timeline. The caller
  /// enables/disables the recorder around the stream. Implies telemetry
  /// publishing (defaults telemetry_every to 1 like a controller does).
  obs::TraceCapture* trace = nullptr;

  /// Providers publish a kHeartbeat lease renewal every this many ms
  /// (0 = off). Meaningful with a controller whose lease_ms is set: the
  /// lease must comfortably exceed this period plus one scheduling hiccup.
  int heartbeat_ms = 0;

  /// Supervisor restart budget per provider thread (0 = classic barrier:
  /// first failure tears the fabric down). Chaos runs raise it so a
  /// provider that starved out while its node was "dead" restarts instead.
  int provider_max_restarts = 0;

  /// Seeded kill/revive schedule, sorted by at_image. Requires `faults`
  /// (the kill switch lives on the fault decorators), reliability, and a
  /// controller with lease_ms > 0 to detect and recover from the deaths.
  std::vector<ChaosEvent> chaos;

  /// Live ops plane (not owned; may be null). When set, serve_stream
  /// registers /metrics (Prometheus text format), /healthz, /membership,
  /// /streams, and /trace/dump on the endpoint for the stream's lifetime
  /// (unrouted at teardown, before any handler-captured state dies), arms
  /// the TraceRecorder in flight-recorder mode if it is not already
  /// enabled (always-on rings; /trace/dump?s=N snapshots the last N
  /// seconds without disturbing the stream), and samples queue-depth
  /// gauges (rpc.mailbox_depth, reliable.outbox_depth) per delivery and
  /// per scrape.
  obs::AdminServer* admin = nullptr;

  /// Per-image end-to-end latency SLO for /streams (submit -> deliver,
  /// milliseconds; 0 = no target, violations stay 0).
  double slo_ms = 0;
};

/// One live reconfiguration the stream performed.
struct ReconfigEvent {
  int epoch = 0;
  int from_image = 0;   ///< first image served by the new strategy
  Seconds at_s = 0;     ///< stream time the announcement went out
  Ms predicted_serving_ms = 0;  ///< controller swaps: old strategy, new view
  Ms predicted_next_ms = 0;     ///< controller swaps: new strategy, new view
  int deaths = 0;       ///< devices this swap removed (lease lapsed)
  int joins = 0;        ///< devices this swap adopted (revival/joiner)
  int cancelled = 0;    ///< in-flight images voided and re-dispatched
};

struct ServeResult {
  /// Canonical per-run metrics (runtime/runtime_metrics.hpp names), the
  /// same names ClusterResult::metrics uses, plus the stream.* extras and
  /// the gather-latency histogram. The scalar fields below are views into
  /// this snapshot, kept for existing callers.
  obs::MetricsSnapshot metrics;
  int images = 0;
  Seconds wall_s = 0;        ///< first scatter -> last gather
  double measured_ips = 0;
  double predicted_ips = 0;  ///< 0 when no simulator inputs were given
  std::int64_t messages_exchanged = 0;
  Bytes bytes_moved = 0;
  Bytes wire_bytes = 0;      ///< frame bytes on the wire, headers included
  Bytes bytes_copied = 0;    ///< userspace copies on the chunk path
  std::int64_t frame_allocs = 0;  ///< frame buffers the arenas had to malloc
  /// Reliability-layer totals across the stream (all zero on a clean run).
  std::int64_t retransmits = 0;
  std::int64_t duplicates_dropped = 0;
  std::int64_t recv_timeouts = 0;
  std::int64_t nacks = 0;
  std::int64_t chunks_abandoned = 0;
  /// Membership-layer totals (all zero on a stable fleet).
  std::int64_t retx_cancelled = 0;    ///< outbox entries fast-failed at death
  std::int64_t images_cancelled = 0;  ///< in-flight images voided+re-dispatched
  int deaths = 0;                     ///< devices removed by lease expiry
  int joins = 0;                      ///< devices adopted (revival/joiner)
  std::int64_t heartbeats = 0;        ///< lease renewals the controller folded
  std::int64_t provider_restarts = 0; ///< supervisor restarts granted
  /// Stream time (seconds since start) each image was delivered, in
  /// delivery order — windowed-IPS / recovery-dip analysis (bench_churn).
  std::vector<double> delivered_at_s;
  /// Stream time each chaos event was applied, in schedule order.
  std::vector<double> chaos_applied_at_s;
  /// Per-image retry/timeout stats observed by the requester's gather.
  std::vector<ImageRetryStats> per_image;
  std::vector<cnn::Tensor> outputs;  ///< filled iff keep_outputs
  /// Every live strategy swap the stream performed (scripted + adaptive).
  std::vector<ReconfigEvent> reconfigurations;
  /// Per-image critical-path breakdowns and per-device straggler scores,
  /// computed from the merged trace when `options.trace` was set (empty
  /// otherwise). The straggler scores are also exported as
  /// attribution.straggler_score{node=N} gauges in `metrics`.
  obs::AttributionReport attribution;
};

/// Streams `inputs` through the cluster with `options.inflight` images in
/// flight. Every input must match the model's input extents.
ServeResult serve_stream(const cnn::CnnModel& model,
                         const sim::RawStrategy& strategy,
                         const std::vector<cnn::ConvWeights>& weights,
                         std::span<const cnn::Tensor> inputs, int n_devices,
                         const ServeOptions& options = {});

}  // namespace de::runtime
