#include "runtime/reliable.hpp"

#include <string>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "obs/trace.hpp"

namespace de::runtime {

bool ChunkDedup::fresh(rpc::NodeId sender, std::uint32_t chunk_id) {
  if (chunk_id == 0) return true;  // untracked chunks are never deduped
  Window& w = seen_[sender];
  if (chunk_id <= w.contiguous) return false;
  if (!w.sparse.insert(chunk_id).second) return false;
  // Advance the watermark over any now-contiguous prefix.
  while (!w.sparse.empty() && *w.sparse.begin() == w.contiguous + 1) {
    ++w.contiguous;
    w.sparse.erase(w.sparse.begin());
  }
  // Bounded sparse window: ids normally arrive gaplessly per link, so a
  // sparse set this large means the sender jumped its ids (rejoined with a
  // new incarnation base) and the hole below will never fill. Advance past
  // the oldest hole rather than growing forever.
  while (w.sparse.size() > kMaxSparse) {
    w.contiguous = *w.sparse.begin();
    w.sparse.erase(w.sparse.begin());
    while (!w.sparse.empty() && *w.sparse.begin() == w.contiguous + 1) {
      ++w.contiguous;
      w.sparse.erase(w.sparse.begin());
    }
  }
  return true;
}

void ChunkDedup::assume(rpc::NodeId sender, std::uint32_t base) {
  Window& w = seen_[sender];
  if (base <= w.contiguous) return;
  w.contiguous = base;
  w.sparse.erase(w.sparse.begin(), w.sparse.upper_bound(base));
  while (!w.sparse.empty() && *w.sparse.begin() == w.contiguous + 1) {
    ++w.contiguous;
    w.sparse.erase(w.sparse.begin());
  }
}

Retransmitter::Retransmitter(rpc::Transport& transport,
                             const ReliabilityOptions& options,
                             DataPlaneStats& stats)
    : transport_(transport), options_(options), stats_(stats) {
  DE_REQUIRE(options_.rto_ms > 0 && options_.max_attempts >= 1,
             "retransmitter needs a positive rto and attempt budget");
  thread_ = std::thread([this] { ctrl_loop(); });
}

Retransmitter::~Retransmitter() { stop(); }

std::uint32_t Retransmitter::next_chunk_id(rpc::NodeId to) {
  std::lock_guard lk(mu_);
  std::uint32_t& id = next_id_[to];
  if (id < id_base_) id = id_base_;
  return ++id;
}

std::size_t Retransmitter::cancel_to(rpc::NodeId to) {
  std::size_t cancelled = 0;
  {
    std::lock_guard lk(mu_);
    auto it = outbox_.lower_bound(LinkChunk{to, 0});
    while (it != outbox_.end() && it->first.first == to) {
      it = outbox_.erase(it);
      ++cancelled;
    }
  }
  if (cancelled > 0) {
    stats_.retx_cancelled.fetch_add(static_cast<std::int64_t>(cancelled),
                                    std::memory_order_relaxed);
    obs::trace_instant(obs::Cat::kRetxCancel, -1, -1, to,
                       static_cast<std::int64_t>(cancelled));
  }
  return cancelled;
}

void Retransmitter::set_id_base(std::uint32_t base) {
  std::lock_guard lk(mu_);
  if (base > id_base_) id_base_ = base;
}

void Retransmitter::track(const rpc::Address& to, std::uint32_t chunk_id,
                          rpc::Frame frame) {
  std::lock_guard lk(mu_);
  tracked_peers_.insert(to.node);
  outbox_.emplace(LinkChunk{to.node, chunk_id},
                  Entry{to, std::move(frame), 1,
                        std::chrono::steady_clock::now()});
}

bool Retransmitter::idle() const {
  std::lock_guard lk(mu_);
  return outbox_.empty();
}

std::map<rpc::NodeId, std::size_t> Retransmitter::outbox_depth_by_peer()
    const {
  std::map<rpc::NodeId, std::size_t> out;
  std::lock_guard lk(mu_);
  // Seed every ever-tracked peer at 0 so drained outboxes report 0 rather
  // than silently vanishing (gauges hold their last value otherwise).
  for (const auto node : tracked_peers_) out[node] = 0;
  for (const auto& [link, entry] : outbox_) ++out[link.first];
  return out;
}

Retransmitter::Resend Retransmitter::stage_resend_locked(Entry& entry) {
  ++entry.attempts;
  entry.last_send = std::chrono::steady_clock::now();
  stats_.retransmits.fetch_add(1, std::memory_order_relaxed);
  stats_.wire_bytes.fetch_add(static_cast<Bytes>(entry.frame.size()),
                              std::memory_order_relaxed);
  return Resend{entry.to, entry.frame};  // refcount share with the outbox
}

void Retransmitter::ctrl_loop() {
  obs::bind_thread("retx-" + std::to_string(transport_.local_node()),
                   transport_.local_node());
  while (!stop_.load(std::memory_order_acquire)) {
    rpc::Frame payload;
    const auto status =
        transport_.receive_for(rpc::kCtrlMailbox, options_.rto_ms, payload);
    if (stop_.load(std::memory_order_acquire)) return;
    if (status == rpc::RecvStatus::kClosed) return;

    // Frames staged under the lock, sent after it: send() can block for a
    // whole large tensor frame (TCP), and worker threads take mu_ in
    // next_chunk_id()/track() on their hot path.
    std::vector<Resend> burst;

    if (status == rpc::RecvStatus::kOk) {
      try {
        switch (rpc::peek_type(payload)) {
          case rpc::MsgType::kAck: {
            // The acker's node id names the link; ids are per-link.
            const auto ack = rpc::decode_ack(payload);
            std::lock_guard lk(mu_);
            if (outbox_.erase(LinkChunk{ack.from_node, ack.chunk_id}) > 0) {
              stats_.acks.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case rpc::MsgType::kNack: {
            // The complainer is starving: resend everything still unacked
            // on its link right now rather than waiting out the rto.
            const auto nack = rpc::decode_nack(payload);
            std::lock_guard lk(mu_);
            auto it = outbox_.lower_bound(LinkChunk{nack.from_node, 0});
            while (it != outbox_.end() && it->first.first == nack.from_node) {
              if (it->second.attempts >= options_.max_attempts) {
                stats_.chunks_abandoned.fetch_add(1, std::memory_order_relaxed);
                it = outbox_.erase(it);
                continue;
              }
              burst.push_back(stage_resend_locked(it->second));
              ++it;
            }
            obs::trace_instant(obs::Cat::kNackResend, nack.seq, -1, -1,
                               static_cast<std::int64_t>(burst.size()));
            break;
          }
          default:
            break;  // stray frame on the control mailbox: ignore
        }
      } catch (const Error&) {
        // Malformed control frame (or the wake-up frame stop() posts):
        // drop it and keep the loop alive.
      }
    }

    // Timer pass: resend anything unacked past the rto, abandon anything
    // over budget.
    {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard lk(mu_);
      for (auto it = outbox_.begin(); it != outbox_.end();) {
        const auto age =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - it->second.last_send)
                .count();
        if (age < options_.rto_ms) {
          ++it;
          continue;
        }
        if (it->second.attempts >= options_.max_attempts) {
          stats_.chunks_abandoned.fetch_add(1, std::memory_order_relaxed);
          it = outbox_.erase(it);
          continue;
        }
        obs::trace_instant(obs::Cat::kRtoFire, -1, -1, -1,
                           static_cast<std::int64_t>(it->first.second));
        burst.push_back(stage_resend_locked(it->second));
        ++it;
      }
    }

    for (auto& resend : burst) {
      transport_.send(resend.to, std::move(resend.frame));
    }
  }
}

void Retransmitter::stop() {
  // Not a synchronisation point between threads: the owner (loop thread's
  // spawner) calls stop()/~Retransmitter; the first call joins.
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  // Best-effort wake-up so the join does not wait out a full rto: an empty
  // frame fails to decode and is discarded by the loop.
  transport_.send(rpc::Address{transport_.local_node(), rpc::kCtrlMailbox},
                  rpc::Frame{});
  if (thread_.joinable()) thread_.join();
}

}  // namespace de::runtime
