#include "runtime/fabric.hpp"

#include <map>
#include <string>

#include "common/require.hpp"
#include "obs/trace.hpp"

namespace de::runtime {

void ClusterFabric::shutdown_all() {
  for (auto* ep : endpoints) ep->shutdown();
}

void ClusterFabric::set_node_down(rpc::NodeId node, bool down) {
  DE_REQUIRE(!faulty.empty(), "node death needs a fault-decorated fabric");
  const auto idx = static_cast<std::size_t>(node);
  DE_REQUIRE(idx < faulty.size(), "node id outside the fabric");
  // Tx half: the dead node itself stops sending...
  if (down) {
    faulty[idx]->kill_node();
  } else {
    faulty[idx]->revive_node();
  }
  // ...and rx half: every peer's link toward it is severed, so nothing it
  // would have received queues up for its resurrection either.
  for (std::size_t k = 0; k < faulty.size(); ++k) {
    if (k == idx) continue;
    faulty[k]->set_link_down(node, down);
  }
}

ClusterFabric make_fabric(int n_devices, bool use_tcp,
                          const rpc::FaultSpec* faults, DataPlaneMode mode,
                          const rpc::ShapingSpec* shaping) {
  ClusterFabric fabric;
  const int n_nodes = n_devices + 1;
  if (use_tcp) {
    std::map<rpc::NodeId, rpc::PeerEndpoint> directory;
    fabric.tcp_nodes.reserve(static_cast<std::size_t>(n_nodes));
    for (rpc::NodeId node = 0; node < n_nodes; ++node) {
      fabric.tcp_nodes.push_back(std::make_unique<rpc::TcpTransport>(
          node, /*port=*/0,
          /*legacy_io=*/mode == DataPlaneMode::kSerialCopy));
      directory[node] =
          rpc::PeerEndpoint{"127.0.0.1", fabric.tcp_nodes.back()->port()};
    }
    for (auto& node : fabric.tcp_nodes) {
      node->set_peers(directory);
      fabric.endpoints.push_back(node.get());
    }
  } else {
    fabric.inproc = std::make_unique<rpc::InProcFabric>(n_nodes);
    for (rpc::NodeId node = 0; node < n_nodes; ++node) {
      fabric.endpoints.push_back(&fabric.inproc->endpoint(node));
    }
  }
  if (faults != nullptr) {
    fabric.faulty.reserve(static_cast<std::size_t>(n_nodes));
    for (std::size_t k = 0; k < fabric.endpoints.size(); ++k) {
      fabric.faulty.push_back(std::make_unique<rpc::FaultInjectingTransport>(
          *fabric.endpoints[k], *faults));
      fabric.endpoints[k] = fabric.faulty.back().get();
    }
  }
  if (shaping != nullptr) {
    // Outermost decorator: pacing happens before fault injection, like a
    // radio that spent airtime on a frame the wire then corrupted. One
    // shared time origin keeps every link's regime switches aligned.
    const auto start = std::chrono::steady_clock::now();
    fabric.shaped.reserve(static_cast<std::size_t>(n_nodes));
    for (std::size_t k = 0; k < fabric.endpoints.size(); ++k) {
      fabric.shaped.push_back(std::make_unique<rpc::ShapedTransport>(
          *fabric.endpoints[k], *shaping, start));
      fabric.endpoints[k] = fabric.shaped.back().get();
    }
  }
  for (auto* ep : fabric.endpoints) {
    ep->open_mailbox(rpc::kDataMailbox);
    ep->open_mailbox(rpc::kCtrlMailbox);
    ep->open_mailbox(rpc::kTelemetryMailbox);
    ep->open_mailbox(rpc::kServeMailbox);
  }
  // One origin sample per node, taken back-to-back: offsets between them are
  // sub-microsecond, so the trace-merge estimator's error is measurable
  // against a near-zero truth in tests while the machinery is the same one a
  // genuinely distributed deployment would exercise.
  fabric.node_origin_us.reserve(static_cast<std::size_t>(n_nodes));
  for (int k = 0; k < n_nodes; ++k) {
    fabric.node_origin_us.push_back(obs::now_us());
  }
  return fabric;
}

namespace {

/// The spawners' escalation policy: tear down the whole fabric, not just
/// the requester — a downed requester transport drops the end-of-stream
/// frames, which would leave the other providers blocked in receive() and
/// deadlock the join. shutdown() is idempotent, so racing escalations from
/// several threads are fine.
Supervisor::Options provider_supervision(ClusterFabric& fabric,
                                         int max_restarts) {
  Supervisor::Options options;
  options.max_restarts = max_restarts;
  options.escalate = [&fabric] { fabric.shutdown_all(); };
  return options;
}

}  // namespace

Supervisor spawn_providers(
    ClusterFabric& fabric, const cnn::CnnModel& model,
    const sim::RawStrategy& strategy,
    const std::vector<cnn::ConvWeights>& weights, const TransferPlan& plan,
    int n_images, DataPlaneStats& stats,
    const ReliabilityOptions& reliability, const cnn::ExecContext& exec,
    DataPlaneMode mode, int telemetry_every, int heartbeat_ms,
    int max_restarts) {
  Supervisor supervisor(provider_supervision(fabric, max_restarts));
  for (int i = 0; i < plan.n_devices; ++i) {
    supervisor.spawn(
        "provider-" + std::to_string(i), i,
        [&fabric, &model, &strategy, &weights, &plan, n_images, &stats,
         reliability, exec, mode, telemetry_every, heartbeat_ms, i] {
          const TelemetryHooks hooks{
              fabric.sampler(i), telemetry_every,
              fabric.node_origin_us[static_cast<std::size_t>(i)],
              heartbeat_ms, plan.requester_node()};
          provider_loop(*fabric.endpoints[static_cast<std::size_t>(i)], i,
                        model, strategy, weights, plan, n_images, stats,
                        reliability, exec, mode, hooks);
        });
  }
  return supervisor;
}

Supervisor spawn_providers_multi(
    ClusterFabric& fabric, int n_devices, std::span<const TenantModel> fleet,
    DataPlaneStats& stats, const ReliabilityOptions& reliability,
    const cnn::ExecContext& exec, DataPlaneMode mode, int telemetry_every,
    int heartbeat_ms, int max_restarts) {
  Supervisor supervisor(provider_supervision(fabric, max_restarts));
  for (int i = 0; i < n_devices; ++i) {
    supervisor.spawn(
        "provider-" + std::to_string(i), i,
        [&fabric, n_devices, fleet, &stats, reliability, exec, mode,
         telemetry_every, heartbeat_ms, i] {
          const TelemetryHooks hooks{
              fabric.sampler(i), telemetry_every,
              fabric.node_origin_us[static_cast<std::size_t>(i)],
              heartbeat_ms, static_cast<rpc::NodeId>(n_devices)};
          provider_loop_multi(*fabric.endpoints[static_cast<std::size_t>(i)],
                              i, fleet, stats, reliability, exec, mode,
                              hooks);
        });
  }
  return supervisor;
}

}  // namespace de::runtime
