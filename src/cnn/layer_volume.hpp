// Layer-volumes (paper term: one or more sequentially connected layers,
// equivalent to "fused layers" in DeepThings/AOFL).
//
// A horizontal partition of an n-layer model is a sorted boundary vector
// {0 = b_0 < b_1 < ... < b_k = n}; volume j spans layers [b_j, b_{j+1}).
#pragma once

#include <span>
#include <vector>

#include "cnn/model.hpp"

namespace de::cnn {

struct LayerVolume {
  int first = 0;  ///< index of the first layer (inclusive)
  int last = 0;   ///< index past the last layer (exclusive)

  int size() const { return last - first; }
  bool operator==(const LayerVolume&) const = default;
};

/// Builds volumes from a boundary vector; validates sortedness / coverage.
std::vector<LayerVolume> volumes_from_boundaries(const std::vector<int>& boundaries,
                                                 int n_layers);

/// Inverse of volumes_from_boundaries.
std::vector<int> boundaries_from_volumes(const std::vector<LayerVolume>& volumes);

/// Span of model layers covered by `v`.
std::span<const LayerConfig> volume_layers(const CnnModel& model, const LayerVolume& v);

/// Output height of the last layer in the volume (the split dimension).
int volume_out_height(const CnnModel& model, const LayerVolume& v);

}  // namespace de::cnn
