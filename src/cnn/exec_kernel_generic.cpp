// Portable scalar conv-band target: plain IEEE single multiply/add per tap,
// 8 independent lanes, no intrinsics. The fallback on any architecture and
// the simplest statement of the arithmetic every SIMD target must match.
#include <algorithm>
#include <cstddef>

#include "cnn/exec_kernel.hpp"

#include "cnn/exec_band.inl"

namespace de::cnn::detail {
namespace {

struct GenericTraits {
  static constexpr int kLanes = 8;
  static constexpr int kMaxCols = 4;

  template <int C>
  static inline void madd(const float* __restrict x, std::size_t x_stride,
                          const float* __restrict w, int len,
                          float (&__restrict acc)[C][kLanes]) {
    for (int j = 0; j < len; ++j) {
      const float* wr = w + static_cast<std::size_t>(j) * kLanes;
      for (int c = 0; c < C; ++c) {
        const float v = x[static_cast<std::size_t>(c) * x_stride + j];
        for (int b = 0; b < kLanes; ++b) acc[c][b] += v * wr[b];
      }
    }
  }
};

void conv_band_generic(const ConvBandCall& call) {
  conv_band_t<GenericTraits>(call);
}

}  // namespace

const ConvBandFn kConvBandGeneric = &conv_band_generic;

}  // namespace de::cnn::detail
