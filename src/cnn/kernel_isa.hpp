// Runtime ISA dispatch for the fast conv micro-kernels.
//
// The build compiles one conv-band translation unit per instruction-set
// target (generic scalar, SSE2, AVX2, AVX-512); which one actually runs is
// decided once per process, from cpuid, the first time a fast conv executes.
// Every target is bit-exact with the reference engine — lane width is a
// *layout* choice (how many independent output-channel accumulator chains
// ride in one vector register), never an arithmetic one, and no target uses
// fused multiply-add (an FMA rounds a*b+c once; the reference rounds twice).
//
// Selection order: AVX-512F > AVX2 > SSE2 > generic, restricted to targets
// both compiled in and supported by the host CPU. `DE_KERNEL_ISA` overrides
// (values as printed by to_string); naming a target the host cannot run is a
// loud error, not a silent fallback — a conformance run forced to "avx512"
// must never quietly measure SSE2. Per-call override via ExecContext::isa.
#pragma once

#include <string>
#include <vector>

namespace de::cnn {

enum class KernelIsa {
  kAuto,     ///< resolve to default_kernel_isa() at execution time
  kGeneric,  ///< portable scalar lanes (any architecture)
  kSse2,     ///< two 4-lane SSE vectors per 8-channel block
  kAvx2,     ///< one 8-lane ymm per block (no FMA — bit-exactness)
  kAvx512,   ///< one 16-lane zmm per block (16-channel packed layout)
};

const char* to_string(KernelIsa isa);
/// Parses "auto" / "generic" / "sse2" / "avx2" / "avx512". Throws on unknown.
KernelIsa kernel_isa_from_string(const std::string& name);

/// True when `isa` was compiled into this binary *and* the host CPU can run
/// it. kGeneric is always supported; kAuto is not a concrete target.
bool kernel_isa_supported(KernelIsa isa);

/// All concrete targets this process can execute, slowest first
/// (kGeneric always present). What tests/benches iterate to prove
/// bit-exactness per target.
std::vector<KernelIsa> supported_kernel_isas();

/// The target kAuto resolves to: the best supported one, unless the
/// DE_KERNEL_ISA environment variable names another (checked supported).
/// Resolved once per process on first call and latched.
KernelIsa default_kernel_isa();

}  // namespace de::cnn
