// Shared conv-band implementation, instantiated once per ISA translation
// unit (exec_kernel_<isa>.cpp) over a Traits type providing:
//
//   static constexpr int kLanes;    // accumulator lanes per packed block
//   static constexpr int kMaxCols;  // widest interior column group
//   template <int C>
//   static void madd(const float* x, std::size_t x_stride, const float* w,
//                    int len, float (&acc)[C][kLanes]);
//
// madd contracts: acc[c][b] += x[c * x_stride + j] * w[j * kLanes + b] for
// j in [0, len), each (c, b) an independent chain, each step one IEEE
// multiply then one IEEE add (never fused — the reference rounds twice per
// tap and so must every target). Column grouping and lane width only change
// which independent chains share a register, never any chain's op order, so
// every instantiation is bit-exact with the scalar reference.
//
// This file is an .inl, not a header: it must only ever be included inside
// the per-ISA TUs, which are the only files built with the matching -m
// flags (a stray include would let the compiler emit e.g. AVX-512 code into
// a TU that runs on any host).
//
// Structure per band call (rows [band_begin, band_end) × packed blocks
// [blk_lo, blk_hi)):
//   gather — per output row, the input patches of a tile of kOxTile output
//            columns are copied into the thread's persistent panel, valid
//            ky rows back to back (a whole interior patch is one
//            contiguous run). Only in-bounds taps are copied; the compute
//            reads exactly the bytes written.
//   madd   — per (column group, block): lanes start at the bias and walk
//            the patch ky→kx→ic ascending — the reference accumulation
//            order. Interior columns go kMaxCols/4/2/1 at a time sharing
//            each weight load; boundary columns run per-ky segments.

namespace de::cnn::detail {
namespace {

template <class Traits>
void conv_band_t(const ConvBandCall& call) {
  constexpr int L = Traits::kLanes;
  const LayerConfig& l = *call.layer;
  const PackedKernel& pk = *call.pk;
  const int k = l.kernel;
  const int in_c = l.in_c;
  const int out_w = l.out_w();
  const int out_c = l.out_c;
  const int row_len = pk.row_len;
  const std::size_t in_stride = static_cast<std::size_t>(l.in_w) * in_c;

  BandScratch& scratch = thread_band_scratch();
  float* panel = BandScratch::ensure(
      scratch.panel, static_cast<std::size_t>(kOxTile) * k * row_len);
  int seg_lo[kOxTile];
  int seg_hi[kOxTile];

  // Output columns in [ox_int_lo, ox_int_hi] have their whole kx range in
  // bounds; everything outside clips against the left/right zero padding.
  const int ox_int_lo = (l.padding + l.stride - 1) / l.stride;
  const int ox_int_hi = (l.in_w - k + l.padding) / l.stride;

  for (int oy = call.band_begin; oy < call.band_end; ++oy) {
    const int y0 = oy * l.stride - l.padding;
    const int ky_lo = std::clamp(-y0, 0, k);
    const int ky_hi = std::clamp(l.in_h - y0, ky_lo, k);
    const int n_ky = ky_hi - ky_lo;
    float* out_row =
        call.out + static_cast<std::size_t>(oy - call.out_top) * out_w * out_c;

    for (int tx0 = 0; tx0 < out_w; tx0 += kOxTile) {
      const int tn = std::min(kOxTile, out_w - tx0);

      for (int t = 0; t < tn; ++t) {
        const int x0 = (tx0 + t) * l.stride - l.padding;
        const int kx_lo = std::clamp(-x0, 0, k);
        const int kx_hi = std::clamp(l.in_w - x0, kx_lo, k);
        seg_lo[t] = kx_lo;
        seg_hi[t] = kx_hi;
        // With padding >= kernel a column can sit entirely in the zero
        // padding (kx_hi == kx_lo); x0 + kx_lo is then out of bounds, so
        // don't even form the source address (the reference path likewise
        // never touches such taps).
        if (kx_hi <= kx_lo) continue;
        float* dst = panel + static_cast<std::size_t>(t) * k * row_len;
        for (int kyi = 0; kyi < n_ky; ++kyi) {
          const int cy = y0 + ky_lo + kyi - call.in_row_offset;
          const float* src = call.in + static_cast<std::size_t>(cy) * in_stride +
                             static_cast<std::size_t>(x0 + kx_lo) * in_c;
          std::copy_n(src, static_cast<std::size_t>(kx_hi - kx_lo) * in_c,
                      dst + static_cast<std::size_t>(kyi) * row_len +
                          static_cast<std::size_t>(kx_lo) * in_c);
        }
      }

      // Columns whose full kx range is in bounds form one contiguous
      // t-range of the tile; their whole patch is a single contiguous run.
      int il = std::clamp(ox_int_lo - tx0, 0, tn);
      int ih = std::clamp(ox_int_hi + 1 - tx0, 0, tn);
      if (ih < il) il = ih = tn;  // no interior columns: all boundary

      // Compute: weight blocks outer so one packed block stays hot across
      // the whole tile of gathered patches.
      const std::size_t col_stride = static_cast<std::size_t>(k) * row_len;
      for (int blk = call.blk_lo; blk < call.blk_hi; ++blk) {
        const float* wblk = pk.block_weights(blk);
        const float* wrun = wblk + static_cast<std::size_t>(ky_lo) * row_len * L;
        const float* bias = pk.block_bias(blk);
        const int oc0 = blk * L;
        const int lanes = std::min(L, out_c - oc0);

        const auto finish = [&](const float (&acc)[L], int t) {
          float* dst = out_row + static_cast<std::size_t>(tx0 + t) * out_c + oc0;
          if (l.relu) {
            for (int b = 0; b < lanes; ++b)
              dst[b] = acc[b] < 0.0f ? 0.0f : acc[b];
          } else {
            for (int b = 0; b < lanes; ++b) dst[b] = acc[b];
          }
        };
        const auto interior = [&]<int C>(int t) {
          float acc[C][L];
          for (int c = 0; c < C; ++c)
            for (int b = 0; b < L; ++b) acc[c][b] = bias[b];
          Traits::template madd<C>(
              panel + static_cast<std::size_t>(t) * col_stride, col_stride,
              wrun, n_ky * row_len, acc);
          for (int c = 0; c < C; ++c) finish(acc[c], t + c);
        };
        const auto boundary = [&](int t) {
          float acc[1][L];
          for (int b = 0; b < L; ++b) acc[0][b] = bias[b];
          const float* patch = panel + static_cast<std::size_t>(t) * col_stride;
          const int jb = seg_lo[t] * in_c;
          const int seg = (seg_hi[t] - seg_lo[t]) * in_c;
          for (int kyi = 0; kyi < n_ky; ++kyi) {
            Traits::template madd<1>(
                patch + static_cast<std::size_t>(kyi) * row_len + jb, 0,
                wblk + (static_cast<std::size_t>(ky_lo + kyi) * row_len + jb) * L,
                seg, acc);
          }
          finish(acc[0], t);
        };

        for (int t = 0; t < il; ++t) boundary(t);
        int t = il;
        if constexpr (Traits::kMaxCols >= 8) {
          for (; t + 8 <= ih; t += 8) interior.template operator()<8>(t);
        }
        for (; t + 4 <= ih; t += 4) interior.template operator()<4>(t);
        for (; t + 2 <= ih; t += 2) interior.template operator()<2>(t);
        for (; t < ih; ++t) interior.template operator()<1>(t);
        for (t = ih; t < tn; ++t) boundary(t);
      }
    }
  }
}

}  // namespace
}  // namespace de::cnn::detail
