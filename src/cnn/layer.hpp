// Layer configurations (paper §III-B).
//
// A CNN model is a sequential chain of convolutional / max-pooling layers
// (plus an optional fully-connected tail handled by `CnnModel`). A layer is
// fully described by its input extent, channel counts, kernel, stride and
// padding; output extents, operation counts and tensor sizes derive from
// those.
#pragma once

#include <string>

#include "common/units.hpp"

namespace de::cnn {

enum class LayerKind { kConv, kMaxPool };

const char* to_string(LayerKind kind);

struct LayerConfig {
  LayerKind kind = LayerKind::kConv;
  std::string name;

  int in_w = 0;
  int in_h = 0;
  int in_c = 0;
  int out_c = 0;  ///< equals in_c for pooling layers
  int kernel = 1;
  int stride = 1;
  int padding = 0;
  bool relu = true;  ///< activation after the layer (conv only)

  int out_w() const;
  int out_h() const;

  /// FLOPs for the whole layer (2*MACs for conv, comparisons for pool).
  Ops ops() const;
  /// FLOPs to produce `rows` rows of output height.
  Ops ops_for_rows(int rows) const;

  Bytes input_bytes() const;
  Bytes output_bytes() const;
  /// Bytes of `rows` rows of the *output* tensor.
  Bytes output_bytes_for_rows(int rows) const;
  /// Bytes of `rows` rows of the *input* tensor.
  Bytes input_bytes_for_rows(int rows) const;
  /// Parameter bytes (conv weights + bias; zero for pooling).
  Bytes weight_bytes() const;

  /// Factory for a conv layer; input extents are chained by ModelBuilder.
  static LayerConfig conv(int in_w, int in_h, int in_c, int out_c, int kernel,
                          int stride, int padding, bool relu = true);
  static LayerConfig maxpool(int in_w, int in_h, int in_c, int kernel, int stride);

  /// Validates internal consistency (positive dims, non-empty output).
  void validate() const;
};

/// Fully-connected layer (runs as an undivided tail, paper §V-A).
struct FcConfig {
  std::string name;
  int in_features = 0;
  int out_features = 0;

  Ops ops() const;
  Bytes output_bytes() const;
  Bytes weight_bytes() const;
};

}  // namespace de::cnn
