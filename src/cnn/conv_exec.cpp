#include "cnn/conv_exec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace de::cnn {

Tensor::Tensor(int h_, int w_, int c_)
    : h(h_), w(w_), c(c_),
      data(static_cast<std::size_t>(h_) * w_ * c_, 0.0f) {
  DE_REQUIRE(h_ > 0 && w_ > 0 && c_ > 0, "tensor extents positive");
}

float& Tensor::at(int y, int x, int ch) {
  return data[(static_cast<std::size_t>(y) * w + x) * c + ch];
}

float Tensor::at(int y, int x, int ch) const {
  return data[(static_cast<std::size_t>(y) * w + x) * c + ch];
}

ConvWeights ConvWeights::random(const LayerConfig& layer, Rng& rng) {
  DE_REQUIRE(layer.kind == LayerKind::kConv, "weights only for conv layers");
  ConvWeights w;
  const std::size_t n = static_cast<std::size_t>(layer.out_c) * layer.in_c *
                        layer.kernel * layer.kernel;
  w.weights.resize(n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(layer.in_c) *
                                       layer.kernel * layer.kernel);
  for (auto& v : w.weights) v = static_cast<float>(rng.uniform(-scale, scale));
  w.bias.resize(static_cast<std::size_t>(layer.out_c));
  for (auto& v : w.bias) v = static_cast<float>(rng.uniform(-0.1, 0.1));
  return w;
}

Tensor conv_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows,
                         const ConvWeights& w) {
  DE_REQUIRE(layer.kind == LayerKind::kConv, "conv_forward_rows on non-conv");
  DE_REQUIRE(!out_rows.empty(), "empty output interval");
  DE_REQUIRE(in_crop.w == layer.in_w && in_crop.c == layer.in_c,
             "input crop extents mismatch");
  const RowInterval needed = input_rows_for(layer, out_rows);
  DE_REQUIRE(in_row_offset <= needed.begin &&
                 in_row_offset + in_crop.h >= needed.end,
             "input crop does not cover the required rows");

  const int out_w = layer.out_w();
  const int k = layer.kernel;
  Tensor out(out_rows.size(), out_w, layer.out_c);
  const std::size_t k_in = static_cast<std::size_t>(layer.in_c) * k * k;

  for (int oy = out_rows.begin; oy < out_rows.end; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      const int y0 = oy * layer.stride - layer.padding;
      const int x0 = ox * layer.stride - layer.padding;
      for (int oc = 0; oc < layer.out_c; ++oc) {
        float acc = w.bias[static_cast<std::size_t>(oc)];
        const float* wk = &w.weights[static_cast<std::size_t>(oc) * k_in];
        for (int ky = 0; ky < k; ++ky) {
          const int iy = y0 + ky;
          if (iy < 0 || iy >= layer.in_h) continue;  // zero padding row
          const int cy = iy - in_row_offset;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = x0 + kx;
            if (ix < 0 || ix >= layer.in_w) continue;  // zero padding col
            const float* px = &in_crop.data[(static_cast<std::size_t>(cy) * in_crop.w + ix) *
                                            in_crop.c];
            const float* wp = wk + (static_cast<std::size_t>(ky) * k + kx) * layer.in_c;
            for (int ic = 0; ic < layer.in_c; ++ic) acc += px[ic] * wp[ic];
          }
        }
        if (layer.relu && acc < 0.0f) acc = 0.0f;
        out.at(oy - out_rows.begin, ox, oc) = acc;
      }
    }
  }
  return out;
}

Tensor maxpool_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows) {
  DE_REQUIRE(layer.kind == LayerKind::kMaxPool, "maxpool_forward_rows on non-pool");
  DE_REQUIRE(!out_rows.empty(), "empty output interval");
  DE_REQUIRE(in_crop.w == layer.in_w && in_crop.c == layer.in_c,
             "input crop extents mismatch");
  const RowInterval needed = input_rows_for(layer, out_rows);
  DE_REQUIRE(in_row_offset <= needed.begin &&
                 in_row_offset + in_crop.h >= needed.end,
             "input crop does not cover the required rows");

  const int out_w = layer.out_w();
  Tensor out(out_rows.size(), out_w, layer.out_c);
  for (int oy = out_rows.begin; oy < out_rows.end; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      for (int ch = 0; ch < layer.in_c; ++ch) {
        float best = -std::numeric_limits<float>::infinity();
        for (int ky = 0; ky < layer.kernel; ++ky) {
          const int iy = oy * layer.stride + ky;
          if (iy >= layer.in_h) continue;
          const int cy = iy - in_row_offset;
          for (int kx = 0; kx < layer.kernel; ++kx) {
            const int ix = ox * layer.stride + kx;
            if (ix >= layer.in_w) continue;
            best = std::max(best, in_crop.at(cy, ix, ch));
          }
        }
        out.at(oy - out_rows.begin, ox, ch) = best;
      }
    }
  }
  return out;
}

Tensor conv_forward(const LayerConfig& layer, const Tensor& in, const ConvWeights& w) {
  DE_REQUIRE(in.h == layer.in_h, "full conv input height mismatch");
  return conv_forward_rows(layer, in, 0, RowInterval{0, layer.out_h()}, w);
}

Tensor maxpool_forward(const LayerConfig& layer, const Tensor& in) {
  DE_REQUIRE(in.h == layer.in_h, "full pool input height mismatch");
  return maxpool_forward_rows(layer, in, 0, RowInterval{0, layer.out_h()});
}

Tensor volume_forward(std::span<const LayerConfig> volume, const Tensor& in,
                      std::span<const ConvWeights> weights) {
  DE_REQUIRE(weights.size() == volume.size(), "one weight entry per layer");
  Tensor cur = in;
  for (std::size_t i = 0; i < volume.size(); ++i) {
    cur = volume[i].kind == LayerKind::kConv
              ? conv_forward(volume[i], cur, weights[i])
              : maxpool_forward(volume[i], cur);
  }
  return cur;
}

Tensor volume_forward_rows(std::span<const LayerConfig> volume, const Tensor& in_crop,
                           int in_row_offset, RowInterval last_out,
                           std::span<const ConvWeights> weights) {
  DE_REQUIRE(weights.size() == volume.size(), "one weight entry per layer");
  DE_REQUIRE(!last_out.empty(), "empty split-part");
  const auto per_layer = per_layer_output_rows(volume, last_out);

  Tensor cur = in_crop;
  int offset = in_row_offset;
  for (std::size_t i = 0; i < volume.size(); ++i) {
    const RowInterval out_rows = per_layer[i];
    cur = volume[i].kind == LayerKind::kConv
              ? conv_forward_rows(volume[i], cur, offset, out_rows, weights[i])
              : maxpool_forward_rows(volume[i], cur, offset, out_rows);
    offset = out_rows.begin;
  }
  return cur;
}

}  // namespace de::cnn
