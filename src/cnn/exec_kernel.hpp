// Internal interface between the engine front-end (exec_engine.cpp) and the
// per-ISA conv-band translation units (exec_kernel_<isa>.cpp). Not part of
// the public API — include exec_engine.hpp instead.
//
// A *band call* is the unit of parallel work: output rows [band_begin,
// band_end) × packed weight blocks [blk_lo, blk_hi) of one conv layer,
// written into disjoint bytes of a shared destination. The engine plans a
// 2-D grid of these (plan_conv_tiles) and runs them across the ThreadPool;
// each executing thread gathers input patches into its own persistent
// BandScratch panel, so steady state allocates nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cnn/conv_exec.hpp"
#include "cnn/kernel_isa.hpp"
#include "cnn/layer.hpp"
#include "cnn/vsl.hpp"

namespace de::cnn::detail {

/// Output columns gathered per panel tile (one row of patches at a time).
constexpr int kOxTile = 48;

/// Conv weights repacked for the fast kernel: `lanes` output channels
/// innermost (independent accumulator lanes — one or two vector registers
/// per block depending on the ISA), one block per `lanes` channels, short
/// final blocks zero-padded (junk lanes are computed and discarded; they
/// share no accumulator with real ones). `lanes` is an ISA property: 8 for
/// generic/SSE2/AVX2, 16 for AVX-512 — layout only, never arithmetic.
struct PackedKernel {
  int k = 0;
  int row_len = 0;  ///< kernel * in_c: one ky row of a patch
  int blocks = 0;
  int lanes = 0;
  std::vector<float> data;  ///< [block][ky][kx*in_c][lanes]
  std::vector<float> bias;  ///< [block][lanes]

  const float* block_weights(int blk) const {
    return &data[static_cast<std::size_t>(blk) * k * row_len * lanes];
  }
  const float* block_bias(int blk) const {
    return &bias[static_cast<std::size_t>(blk) * lanes];
  }
};

/// Packs `w` for `lanes`-wide blocks into `p`, reusing its buffers.
void pack_weights_into(PackedKernel& p, const LayerConfig& l,
                       const ConvWeights& w, int lanes);

/// Accumulator lanes per packed block for `isa` (a concrete target).
int kernel_isa_lanes(KernelIsa isa);

/// Per-thread reusable buffers for the fast path. Thread-local: pool
/// workers and external callers each own one for the life of the thread, so
/// after the first call at a given geometry the steady state never touches
/// the allocator (asserted by tests via scratch_grow_count()).
struct BandScratch {
  std::vector<float> panel;  ///< gathered patch tile (kOxTile columns)
  std::vector<float> ring;   ///< fused conv→pool rolling conv-row window
  PackedKernel pack;         ///< fallback pack when the context has no cache

  /// Grows `v` to at least `n` floats; counts a scratch growth when the
  /// capacity actually changes.
  static float* ensure(std::vector<float>& v, std::size_t n);
};

/// The calling thread's scratch (created on first use).
BandScratch& thread_band_scratch();

/// Process-wide count of scratch buffer growths (relaxed). Flat in steady
/// state — the banded-equivalence test asserts it stops moving once every
/// participating thread has warmed up.
std::uint64_t scratch_grow_count();

/// One fast-conv work item (see file comment). `out` points at rows of
/// `layer->out_w() * layer->out_c` floats whose row 0 is absolute output
/// row `out_top`; only rows [band_begin, band_end) × channels
/// [blk_lo*lanes, min(blk_hi*lanes, out_c)) are written.
struct ConvBandCall {
  const LayerConfig* layer;
  const float* in;  ///< crop base: rows of in_w * in_c floats
  int in_row_offset;
  int band_begin;
  int band_end;
  int out_top;
  int blk_lo;
  int blk_hi;
  const PackedKernel* pk;
  float* out;
};

using ConvBandFn = void (*)(const ConvBandCall&);

/// Per-target entry point, or nullptr when the target is not compiled into
/// this binary (wrong architecture). Host-CPU support is *not* checked here
/// — kernel_isa_supported() is the safe query.
ConvBandFn conv_band_fn(KernelIsa isa);

// Defined one per exec_kernel_<isa>.cpp.
extern const ConvBandFn kConvBandGeneric;
extern const ConvBandFn kConvBandSse2;
extern const ConvBandFn kConvBandAvx2;
extern const ConvBandFn kConvBandAvx512;

/// A tile of the 2-D (row bands × oc-block ranges) decomposition.
struct ConvTile {
  RowInterval rows;
  int blk_lo = 0;
  int blk_hi = 0;
};

/// The 2-D decomposition of a conv call as a computed view (no per-call
/// allocation): tile i is row band i / oc_tiles × block range i % oc_tiles.
/// Bands partition out_rows exactly; block ranges partition [0, blocks).
struct ConvTilePlan {
  RowInterval out_rows;
  int blocks = 1;
  int n_bands = 1;
  int oc_tiles = 1;

  int count() const { return n_bands * oc_tiles; }
  ConvTile tile(int i) const {
    const int b = i / oc_tiles;
    const int o = i % oc_tiles;
    const int rows = out_rows.size();
    return ConvTile{
        RowInterval{out_rows.begin + rows * b / n_bands,
                    out_rows.begin + rows * (b + 1) / n_bands},
        blocks * o / oc_tiles, blocks * (o + 1) / oc_tiles};
  }
};

/// Plans the 2-D decomposition of `out_rows` × `blocks` for `threads`
/// workers: rows are split first (splitting output channels duplicates the
/// per-row gather, so oc-block ranges join only when there are too few rows
/// to feed the pool), into ~4 tiles per worker so parallel_for's dynamic
/// claiming absorbs uneven tile cost. threads <= 1 yields the whole call as
/// one tile.
ConvTilePlan plan_conv_tiles(RowInterval out_rows, int blocks, int threads);

}  // namespace de::cnn::detail
