#include "cnn/exec_kernel.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace de::cnn::detail {

namespace {
std::atomic<std::uint64_t> g_scratch_grows{0};
}  // namespace

float* BandScratch::ensure(std::vector<float>& v, std::size_t n) {
  if (v.size() < n) {
    if (v.capacity() < n) {
      g_scratch_grows.fetch_add(1, std::memory_order_relaxed);
    }
    v.resize(n);
  }
  return v.data();
}

BandScratch& thread_band_scratch() {
  thread_local BandScratch scratch;
  return scratch;
}

std::uint64_t scratch_grow_count() {
  return g_scratch_grows.load(std::memory_order_relaxed);
}

void pack_weights_into(PackedKernel& p, const LayerConfig& l,
                       const ConvWeights& w, int lanes) {
  p.k = l.kernel;
  p.row_len = l.kernel * l.in_c;
  p.blocks = (l.out_c + lanes - 1) / lanes;
  p.lanes = lanes;
  const std::size_t dn =
      static_cast<std::size_t>(p.blocks) * l.kernel * p.row_len * lanes;
  const std::size_t bn = static_cast<std::size_t>(p.blocks) * lanes;
  float* data = BandScratch::ensure(p.data, dn);
  float* bias = BandScratch::ensure(p.bias, bn);
  std::fill(data, data + dn, 0.0f);  // junk lanes of short final blocks
  std::fill(bias, bias + bn, 0.0f);
  const std::size_t k_in =
      static_cast<std::size_t>(l.in_c) * l.kernel * l.kernel;
  for (int oc = 0; oc < l.out_c; ++oc) {
    const int blk = oc / lanes;
    const int lane = oc % lanes;
    bias[static_cast<std::size_t>(blk) * lanes + lane] =
        w.bias[static_cast<std::size_t>(oc)];
    const float* src = &w.weights[static_cast<std::size_t>(oc) * k_in];
    for (std::size_t j = 0; j < k_in; ++j) {
      data[(static_cast<std::size_t>(blk) * l.kernel * p.row_len + j) * lanes +
           lane] = src[j];
    }
  }
}

int kernel_isa_lanes(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kGeneric:
    case KernelIsa::kSse2:
    case KernelIsa::kAvx2:
      return 8;
    case KernelIsa::kAvx512:
      return 16;
    case KernelIsa::kAuto:
      break;
  }
  throw Error("kernel_isa_lanes on non-concrete ISA");
}

ConvBandFn conv_band_fn(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kGeneric: return kConvBandGeneric;
    case KernelIsa::kSse2: return kConvBandSse2;
    case KernelIsa::kAvx2: return kConvBandAvx2;
    case KernelIsa::kAvx512: return kConvBandAvx512;
    case KernelIsa::kAuto: break;
  }
  return nullptr;
}

ConvTilePlan plan_conv_tiles(RowInterval out_rows, int blocks, int threads) {
  ConvTilePlan plan{out_rows, std::max(1, blocks), 1, 1};
  const int rows = out_rows.size();
  if (threads <= 1 || rows <= 0) return plan;
  const int target = threads * 4;
  plan.n_bands = std::min(rows, target);
  if (plan.n_bands < target) {
    plan.oc_tiles = std::min(
        plan.blocks, (target + plan.n_bands - 1) / plan.n_bands);
  }
  return plan;
}

}  // namespace de::cnn::detail
