// Convolution execution engines: the naive reference path and a fast path
// (packed kernels + im2col-style row panels + 2-D tiled ThreadPool
// decomposition + runtime ISA dispatch) that is bit-exact with it.
//
// kReference is the scalar 7-deep loop of conv_exec.cpp — the numerical
// ground truth. kFast repacks the conv weights so output channels are the
// innermost (vector-lane) dimension, gathers each output row's input patches
// into a per-thread reusable panel, and runs a cache-tiled
// multiply-accumulate over both. Bit-exactness is by construction, not by
// tolerance: for every output pixel the fast kernel performs exactly the
// reference's float operations in exactly the reference's order — bias
// first, then ky→kx→ic ascending with the same zero-padding taps *skipped*
// (never added as +0.0f) — and the only reordering is across independent
// output pixels / channels, which share no accumulator.
//
// Parallelism is a 2-D tiling: output rows × output-channel block ranges
// partition each call into tiles run across a ThreadPool; tiles write
// disjoint bytes, so threading cannot change results either. The
// multiply-accumulate micro-kernel is selected once per process from cpuid
// (generic scalar / SSE2 / AVX2 / AVX-512 — see kernel_isa.hpp), every
// target bit-exact by the same argument: lane width is packing layout, and
// no target uses FMA contraction. A fused conv→ReLU→maxpool epilogue
// computes pooling from a rolling window of conv rows without materializing
// the conv tensor; the pooled result is bitwise the same because max over
// identical values in identical order is. DESIGN.md §execution-engine has
// the full argument.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cnn/conv_exec.hpp"
#include "cnn/kernel_isa.hpp"
#include "common/thread_pool.hpp"

namespace de::cnn {

enum class ExecEngine {
  kReference,  ///< conv_exec.cpp scalar loops, single-threaded
  kFast,       ///< packed kernels + panels + 2-D tiled threading + ISA dispatch
};

const char* to_string(ExecEngine engine);
/// Parses "reference" / "fast" (as printed by to_string). Throws on unknown.
ExecEngine exec_engine_from_string(const std::string& name);

/// Cache of packed conv weights, keyed by ConvWeights identity (object
/// address) and packed lane width. Packing is cheap next to one band's
/// FLOPs but not next to a whole stream's: with a cache the data plane
/// packs each layer once per run instead of once per image. Every weights
/// object used through a cache-bearing context must outlive the cache — a
/// weights object that dies and another allocated at its address would
/// alias its entry (a geometry mismatch is caught by an assert; same-shape
/// aliasing is not). First-touch packing is serialized by an internal lock,
/// so threads may share one cache-bearing context (cnn_exec_cache_race_test
/// is the TSan regression); packed entries are immutable once inserted.
class ExecCache {
 public:
  ExecCache();
  ~ExecCache();
  ExecCache(ExecCache&&) noexcept;
  ExecCache& operator=(ExecCache&&) noexcept;

  /// Internal state (defined in exec_engine.cpp; not part of the API).
  struct Impl;
  Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// How to execute conv/pool forwards: which engine, (fast engine only) which
/// pool to spread tiles across, an optional packed-weight cache, which ISA
/// micro-kernel (kAuto = the process default from cpuid / DE_KERNEL_ISA),
/// and whether volume execution may fuse conv→relu→pool pairs. A null pool
/// runs the fast kernel single-threaded; the reference engine never
/// threads, never packs, never fuses.
struct ExecContext {
  ExecEngine engine = ExecEngine::kReference;
  ThreadPool* pool = nullptr;  ///< not owned; tile parallelism when set
  ExecCache* cache = nullptr;  ///< not owned; packed-weight reuse when set
  KernelIsa isa = KernelIsa::kAuto;  ///< force a dispatch target (testing)
  bool fuse_conv_pool = true;  ///< volume fusion epilogue (fast engine only)

  static ExecContext reference() { return {}; }
  static ExecContext fast(ThreadPool* pool = nullptr) {
    return {ExecEngine::kFast, pool};
  }
  /// Fast engine on the process-wide shared pool — what the cluster runtime
  /// defaults to.
  static ExecContext fast_shared() {
    return {ExecEngine::kFast, &ThreadPool::shared()};
  }
};

/// Engine-dispatched counterparts of the conv_exec.hpp entry points. With
/// ExecContext::reference() they call the reference path verbatim; with the
/// fast engine they produce bit-identical tensors (tests/cnn/exec_engine_test).
Tensor conv_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows,
                         const ConvWeights& w, const ExecContext& ctx);
Tensor maxpool_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ExecContext& ctx);
Tensor volume_forward(std::span<const LayerConfig> volume, const Tensor& in,
                      std::span<const ConvWeights> weights,
                      const ExecContext& ctx);
Tensor volume_forward_rows(std::span<const LayerConfig> volume,
                           const Tensor& in_crop, int in_row_offset,
                           RowInterval last_out,
                           std::span<const ConvWeights> weights,
                           const ExecContext& ctx);

/// In-place band entries for the halo-first data plane: identical math to
/// the allocating counterparts, but the (final-layer) output rows land
/// directly in `dst`, whose row 0 is absolute output row `dst_top` — so a
/// part tensor can be filled band by band (boundary bands first, interior
/// later) with zero stitching copies. Disjoint `out_rows`/`last_out` bands
/// write disjoint bytes of `dst`, and a part computed as any row partition
/// of bands is bit-identical to one whole-part call: bands only re-cut the
/// row loop, and both engines are order-exact per output pixel. With the
/// reference engine the band is materialized and copied in (the reference
/// path stays byte-for-byte the conv_exec.cpp ground truth).
void conv_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ConvWeights& w, const ExecContext& ctx,
                            Tensor& dst, int dst_top);
void maxpool_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                               int in_row_offset, RowInterval out_rows,
                               const ExecContext& ctx, Tensor& dst,
                               int dst_top);
void volume_forward_rows_into(std::span<const LayerConfig> volume,
                              const Tensor& in_crop, int in_row_offset,
                              RowInterval last_out,
                              std::span<const ConvWeights> weights,
                              const ExecContext& ctx, Tensor& dst,
                              int dst_top);

/// True when `pool` consumes exactly `conv`'s output (extents and channels
/// chain, no pool padding) — the shape volume execution fuses.
bool can_fuse_conv_pool(const LayerConfig& conv, const LayerConfig& pool);

/// Fused conv→(relu)→maxpool: produces `pool` output rows `out_rows` from
/// `conv`'s *input* crop, computing conv rows into a per-thread rolling
/// window of pool.kernel rows instead of materializing the conv tensor.
/// Bit-exact with the unfused two-layer chain: the conv rows are produced
/// by the same band kernel, and pooling performs identical comparisons in
/// identical order on identical values. With the reference engine the pair
/// is materialized layer by layer (ground truth unchanged).
Tensor conv_pool_forward_rows(const LayerConfig& conv, const LayerConfig& pool,
                              const Tensor& in_crop, int in_row_offset,
                              RowInterval out_rows, const ConvWeights& w,
                              const ExecContext& ctx);
void conv_pool_forward_rows_into(const LayerConfig& conv,
                                 const LayerConfig& pool, const Tensor& in_crop,
                                 int in_row_offset, RowInterval out_rows,
                                 const ConvWeights& w, const ExecContext& ctx,
                                 Tensor& dst, int dst_top);

/// Process-wide count of fast-path scratch buffer growths (panel / packed /
/// fused-window, across all threads). Steady state is flat: once every
/// participating thread has executed a given geometry, repeated calls must
/// not move this counter (asserted in the banded-equivalence test — the
/// engine-side analogue of the data plane's frame_allocs).
std::uint64_t exec_scratch_allocs();

}  // namespace de::cnn
