// Convolution execution engines: the naive reference path and a fast path
// (packed kernels + im2col-style row panels + ThreadPool row bands) that is
// bit-exact with it.
//
// kReference is the scalar 7-deep loop of conv_exec.cpp — the numerical
// ground truth. kFast repacks the conv weights so output channels are the
// innermost (vector-lane) dimension, gathers each output row's input patches
// into a contiguous panel, and runs a cache-tiled multiply-accumulate over
// both. Bit-exactness is by construction, not by tolerance: for every output
// pixel the fast kernel performs exactly the reference's float operations in
// exactly the reference's order — bias first, then ky→kx→ic ascending with
// the same zero-padding taps *skipped* (never added as +0.0f) — and the only
// reordering is across independent output pixels / channels, which share no
// accumulator. Row-band parallelism partitions output rows across a
// ThreadPool; bands write disjoint rows, so threading cannot change results
// either. DESIGN.md §execution-engine has the full argument.
#pragma once

#include <memory>
#include <string>

#include "cnn/conv_exec.hpp"
#include "common/thread_pool.hpp"

namespace de::cnn {

enum class ExecEngine {
  kReference,  ///< conv_exec.cpp scalar loops, single-threaded
  kFast,       ///< packed kernels + row panels + optional row-band threading
};

const char* to_string(ExecEngine engine);
/// Parses "reference" / "fast" (as printed by to_string). Throws on unknown.
ExecEngine exec_engine_from_string(const std::string& name);

/// Per-worker cache of packed conv weights, keyed by ConvWeights identity
/// (object address). Packing is cheap next to one band's FLOPs but not next
/// to a whole stream's: with a cache the data plane packs each layer once
/// per run instead of once per image. Every weights object used through a
/// cache-bearing context must outlive the cache — a weights object that dies
/// and another allocated at its address would alias its entry (a geometry
/// mismatch is caught by an assert; same-shape aliasing is not). Not
/// thread-safe — give each worker thread its own; the row-band tasks only
/// read entries the owning thread already populated.
class ExecCache {
 public:
  ExecCache();
  ~ExecCache();
  ExecCache(ExecCache&&) noexcept;
  ExecCache& operator=(ExecCache&&) noexcept;

  /// Internal state (defined in exec_engine.cpp; not part of the API).
  struct Impl;
  Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// How to execute conv/pool forwards: which engine, (fast engine only) which
/// pool to spread output-row bands across, and an optional packed-weight
/// cache. A null pool runs the fast kernel single-threaded; the reference
/// engine never threads and never packs.
struct ExecContext {
  ExecEngine engine = ExecEngine::kReference;
  ThreadPool* pool = nullptr;   ///< not owned; row-band parallelism when set
  ExecCache* cache = nullptr;   ///< not owned; packed-weight reuse when set

  static ExecContext reference() { return {}; }
  static ExecContext fast(ThreadPool* pool = nullptr) {
    return {ExecEngine::kFast, pool};
  }
  /// Fast engine on the process-wide shared pool — what the cluster runtime
  /// defaults to.
  static ExecContext fast_shared() {
    return {ExecEngine::kFast, &ThreadPool::shared()};
  }
};

/// Engine-dispatched counterparts of the conv_exec.hpp entry points. With
/// ExecContext::reference() they call the reference path verbatim; with the
/// fast engine they produce bit-identical tensors (tests/cnn/exec_engine_test).
Tensor conv_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows,
                         const ConvWeights& w, const ExecContext& ctx);
Tensor maxpool_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ExecContext& ctx);
Tensor volume_forward(std::span<const LayerConfig> volume, const Tensor& in,
                      std::span<const ConvWeights> weights,
                      const ExecContext& ctx);
Tensor volume_forward_rows(std::span<const LayerConfig> volume,
                           const Tensor& in_crop, int in_row_offset,
                           RowInterval last_out,
                           std::span<const ConvWeights> weights,
                           const ExecContext& ctx);

/// In-place band entries for the halo-first data plane: identical math to
/// the allocating counterparts, but the (final-layer) output rows land
/// directly in `dst`, whose row 0 is absolute output row `dst_top` — so a
/// part tensor can be filled band by band (boundary bands first, interior
/// later) with zero stitching copies. Disjoint `out_rows`/`last_out` bands
/// write disjoint bytes of `dst`, and a part computed as any row partition
/// of bands is bit-identical to one whole-part call: bands only re-cut the
/// row loop, and both engines are order-exact per output pixel. With the
/// reference engine the band is materialized and copied in (the reference
/// path stays byte-for-byte the conv_exec.cpp ground truth).
void conv_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ConvWeights& w, const ExecContext& ctx,
                            Tensor& dst, int dst_top);
void maxpool_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                               int in_row_offset, RowInterval out_rows,
                               const ExecContext& ctx, Tensor& dst,
                               int dst_top);
void volume_forward_rows_into(std::span<const LayerConfig> volume,
                              const Tensor& in_crop, int in_row_offset,
                              RowInterval last_out,
                              std::span<const ConvWeights> weights,
                              const ExecContext& ctx, Tensor& dst,
                              int dst_top);

}  // namespace de::cnn
