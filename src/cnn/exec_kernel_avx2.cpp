// AVX2 conv-band target: one 8-lane ymm per block. Deliberately mul+add,
// NOT vfmadd — an FMA rounds a*b+c once where the reference rounds the
// product and the sum separately, so FMA would break the absolute
// bit-exactness contract. The AVX2 win over SSE2 is purely executing one
// 8-wide op where SSE2 needs two 4-wide ones (and eight independent
// accumulator chains per group to hide vaddps latency).
//
// This TU is the only one compiled with -mavx2 (see CMakeLists); it must
// stay behind runtime dispatch — nothing here may run unless
// kernel_isa_supported(kAvx2).
#include <algorithm>
#include <cstddef>

#include "cnn/exec_kernel.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include "cnn/exec_band.inl"

namespace de::cnn::detail {
namespace {

struct Avx2Traits {
  static constexpr int kLanes = 8;
  // C=8 -> 8 ymm accumulators + 1 weight vector + 1 broadcast out of 16:
  // eight independent add chains per weight load.
  static constexpr int kMaxCols = 8;

  template <int C>
  static inline void madd(const float* __restrict x, std::size_t x_stride,
                          const float* __restrict w, int len,
                          float (&__restrict acc)[C][kLanes]) {
    __m256 a[C];
    for (int c = 0; c < C; ++c) a[c] = _mm256_loadu_ps(acc[c]);
    for (int j = 0; j < len; ++j) {
      const __m256 w0 = _mm256_loadu_ps(w + static_cast<std::size_t>(j) * kLanes);
      for (int c = 0; c < C; ++c) {
        const __m256 v =
            _mm256_set1_ps(x[static_cast<std::size_t>(c) * x_stride + j]);
        a[c] = _mm256_add_ps(a[c], _mm256_mul_ps(v, w0));
      }
    }
    for (int c = 0; c < C; ++c) _mm256_storeu_ps(acc[c], a[c]);
  }
};

void conv_band_avx2(const ConvBandCall& call) { conv_band_t<Avx2Traits>(call); }

}  // namespace

const ConvBandFn kConvBandAvx2 = &conv_band_avx2;

}  // namespace de::cnn::detail

#else  // !__AVX2__

namespace de::cnn::detail {
const ConvBandFn kConvBandAvx2 = nullptr;
}

#endif
