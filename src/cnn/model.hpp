// Sequential CNN model + fluent builder.
//
// Models are chains of conv/pool layers followed by an optional
// fully-connected tail. The builder chains input extents automatically so a
// zoo entry only lists (out_c, kernel, stride, padding).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "cnn/layer.hpp"

namespace de::cnn {

class CnnModel {
 public:
  CnnModel() = default;
  CnnModel(std::string name, std::vector<LayerConfig> layers,
           std::vector<FcConfig> fc_tail);

  const std::string& name() const { return name_; }
  const std::vector<LayerConfig>& layers() const { return layers_; }
  const std::vector<FcConfig>& fc_tail() const { return fc_tail_; }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerConfig& layer(int i) const;

  /// View of layers [first, last).
  std::span<const LayerConfig> slice(int first, int last) const;

  int input_w() const { return layers_.front().in_w; }
  int input_h() const { return layers_.front().in_h; }
  int input_c() const { return layers_.front().in_c; }

  Bytes input_bytes() const;
  /// Bytes of the final network output (FC tail output, or last conv output).
  Bytes result_bytes() const;

  Ops total_ops() const;      ///< conv/pool chain + FC tail
  Ops conv_chain_ops() const; ///< conv/pool chain only
  Ops fc_ops() const;

  /// Checks the dimension chaining of consecutive layers and the FC tail.
  void validate() const;

 private:
  std::string name_;
  std::vector<LayerConfig> layers_;
  std::vector<FcConfig> fc_tail_;
};

/// Fluent construction with automatic extent chaining.
class ModelBuilder {
 public:
  ModelBuilder(std::string name, int in_w, int in_h, int in_c);

  ModelBuilder& conv(int out_c, int kernel, int stride, int padding,
                     bool relu = true);
  /// kernel x kernel conv, stride 1, "same" padding (odd kernels).
  ModelBuilder& conv_same(int out_c, int kernel);
  ModelBuilder& maxpool(int kernel, int stride);
  ModelBuilder& fc(int out_features);

  /// `times` repetitions of conv_same(out_c, kernel).
  ModelBuilder& conv_same_n(int times, int out_c, int kernel);

  CnnModel build();

 private:
  std::string name_;
  int w_, h_, c_;
  std::vector<LayerConfig> layers_;
  std::vector<FcConfig> fc_;
  int fc_features_ = 0;  // current feature count once FC started, 0 = not yet
};

}  // namespace de::cnn
