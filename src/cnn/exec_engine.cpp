// Fast conv/pool execution. Kernel structure (DESIGN.md §execution-engine):
//
//   pack   — conv weights [out_c][ky][kx][in_c] are repacked per block of
//            kOcBlock output channels into [block][ky][kx*in_c][kOcBlock], so
//            the innermost dimension is independent accumulator lanes the
//            compiler can keep in one or two vector registers.
//   gather — per output row, the input patches of a tile of output columns
//            are copied into a contiguous panel (im2col on a row band). A
//            panel row holds the valid ky rows back to back, so an interior
//            column's whole patch is a single contiguous run.
//   madd   — for each (column, block): lanes start at the bias and run
//            acc[b] += panel[j] * packed[j][b] over the patch. j walks
//            ky→kx→ic ascending, i.e. the reference accumulation order.
//
// Padding taps are *skipped* exactly like the reference skips them (ky and kx
// clamp to the in-bounds range), never multiplied in as zeros: x + 0.0f is
// not an identity for x == -0.0f, and the bit-exactness contract is absolute.
// The build compiles this directory with -ffp-contract=off so neither engine
// can be fma-contracted differently from the other.
#include "cnn/exec_engine.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/require.hpp"

namespace de::cnn {

const char* to_string(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kReference: return "reference";
    case ExecEngine::kFast: return "fast";
  }
  return "?";
}

ExecEngine exec_engine_from_string(const std::string& name) {
  if (name == "reference") return ExecEngine::kReference;
  if (name == "fast") return ExecEngine::kFast;
  throw Error("unknown exec engine: \"" + name + "\" (want reference|fast)");
}

namespace detail {

constexpr int kOcBlock = 8;  ///< accumulator lanes per packed weight block

/// Conv weights repacked for the fast kernel: lanes innermost, one block per
/// kOcBlock output channels, short blocks zero-padded (the junk lanes are
/// computed and discarded — they share no accumulator with real ones).
struct PackedKernel {
  int k = 0;
  int row_len = 0;  ///< kernel * in_c: one ky row of a patch
  int blocks = 0;
  std::vector<float> data;  ///< [block][ky][kx*in_c][kOcBlock]
  std::vector<float> bias;  ///< [block][kOcBlock]

  const float* block_weights(int blk) const {
    return &data[static_cast<std::size_t>(blk) * k * row_len * kOcBlock];
  }
  const float* block_bias(int blk) const {
    return &bias[static_cast<std::size_t>(blk) * kOcBlock];
  }
};

PackedKernel pack_weights(const LayerConfig& l, const ConvWeights& w) {
  PackedKernel p;
  p.k = l.kernel;
  p.row_len = l.kernel * l.in_c;
  p.blocks = (l.out_c + kOcBlock - 1) / kOcBlock;
  p.data.assign(static_cast<std::size_t>(p.blocks) * l.kernel * p.row_len *
                    kOcBlock,
                0.0f);
  p.bias.assign(static_cast<std::size_t>(p.blocks) * kOcBlock, 0.0f);
  const std::size_t k_in =
      static_cast<std::size_t>(l.in_c) * l.kernel * l.kernel;
  for (int oc = 0; oc < l.out_c; ++oc) {
    const int blk = oc / kOcBlock;
    const int lane = oc % kOcBlock;
    p.bias[static_cast<std::size_t>(blk) * kOcBlock + lane] =
        w.bias[static_cast<std::size_t>(oc)];
    const float* src = &w.weights[static_cast<std::size_t>(oc) * k_in];
    for (std::size_t j = 0; j < k_in; ++j) {
      p.data[(static_cast<std::size_t>(blk) * l.kernel * p.row_len + j) *
                 kOcBlock +
             lane] = src[j];
    }
  }
  return p;
}

}  // namespace detail

struct ExecCache::Impl {
  std::map<const ConvWeights*, detail::PackedKernel> packed;
};

ExecCache::ExecCache() : impl_(std::make_unique<Impl>()) {}
ExecCache::~ExecCache() = default;
ExecCache::ExecCache(ExecCache&&) noexcept = default;
ExecCache& ExecCache::operator=(ExecCache&&) noexcept = default;

namespace {

using detail::kOcBlock;
using detail::PackedKernel;

constexpr int kOxTile = 48;  ///< output columns gathered per panel

/// The packed form of `w`: from the cache when the context carries one
/// (packing each weights object at most once per cache), else freshly packed
/// into `scratch`. The cache key is the weights object's address — valid
/// because a ConvWeights belongs to one layer for its whole life in this
/// codebase; the extent assert catches a violation of that assumption.
const PackedKernel& packed_for(const LayerConfig& l, const ConvWeights& w,
                               const ExecContext& ctx, PackedKernel& scratch) {
  if (ctx.cache == nullptr) {
    scratch = detail::pack_weights(l, w);
    return scratch;
  }
  PackedKernel& slot = ctx.cache->impl().packed[&w];
  if (slot.blocks == 0) slot = detail::pack_weights(l, w);
  DE_ASSERT(slot.k == l.kernel && slot.row_len == l.kernel * l.in_c &&
                slot.blocks == (l.out_c + kOcBlock - 1) / kOcBlock,
            "cached packed weights belong to a different layer config");
  return slot;
}

/// acc[c][b] += x[c * x_stride + j] * w[j][b] for C output columns at once.
/// Every (c, b) accumulator is an independent chain — the compiler may
/// vectorize across b and pipeline across c without reassociating any single
/// accumulator, so per-pixel accumulation order is untouched. Larger C
/// amortizes the weight loads and hides the float-add latency behind more
/// chains; C is capped by register pressure (C=4 → 32 accumulator floats).
template <int C>
inline void madd_run(const float* __restrict x, std::size_t x_stride,
                     const float* __restrict w, int len,
                     float (&__restrict acc)[C][kOcBlock]) {
#if defined(__SSE2__)
  // Hand-placed SSE2 (baseline on x86-64): mulps/addps are plain IEEE
  // single-precision multiplies and adds — bit-identical to the scalar
  // reference ops and never fma-contracted. The explicit form matters: GCC's
  // auto-vectorizer turns the generic loop below into a shuffle-transpose
  // across j that runs ~5x slower than this.
  static_assert(kOcBlock == 8, "two 4-lane vectors per block");
  __m128 a[C][2];
  for (int c = 0; c < C; ++c) {
    a[c][0] = _mm_loadu_ps(acc[c]);
    a[c][1] = _mm_loadu_ps(acc[c] + 4);
  }
  for (int j = 0; j < len; ++j) {
    const float* wr = w + static_cast<std::size_t>(j) * kOcBlock;
    const __m128 w0 = _mm_loadu_ps(wr);
    const __m128 w1 = _mm_loadu_ps(wr + 4);
    for (int c = 0; c < C; ++c) {
      const __m128 v = _mm_set1_ps(x[static_cast<std::size_t>(c) * x_stride + j]);
      a[c][0] = _mm_add_ps(a[c][0], _mm_mul_ps(v, w0));
      a[c][1] = _mm_add_ps(a[c][1], _mm_mul_ps(v, w1));
    }
  }
  for (int c = 0; c < C; ++c) {
    _mm_storeu_ps(acc[c], a[c][0]);
    _mm_storeu_ps(acc[c] + 4, a[c][1]);
  }
#else
  for (int j = 0; j < len; ++j) {
    const float* wr = w + static_cast<std::size_t>(j) * kOcBlock;
    for (int c = 0; c < C; ++c) {
      const float v = x[static_cast<std::size_t>(c) * x_stride + j];
      for (int b = 0; b < kOcBlock; ++b) acc[c][b] += v * wr[b];
    }
  }
#endif
}

/// Fast conv of output rows `band` into `out`, whose row 0 is absolute
/// output row `out_top`. Rows of distinct bands are disjoint, so concurrent
/// band calls on one `out` never touch the same bytes.
void conv_band(const LayerConfig& l, const Tensor& in_crop, int in_row_offset,
               RowInterval band, int out_top, const PackedKernel& pk,
               Tensor& out) {
  const int k = l.kernel;
  const int in_c = l.in_c;
  const int out_w = l.out_w();
  const int out_c = l.out_c;
  const int row_len = pk.row_len;

  std::vector<float> panel(static_cast<std::size_t>(kOxTile) * k * row_len);
  int seg_lo[kOxTile];
  int seg_hi[kOxTile];

  // Output columns in [ox_int_lo, ox_int_hi] have their whole kx range in
  // bounds; everything outside clips against the left/right zero padding.
  const int ox_int_lo = (l.padding + l.stride - 1) / l.stride;
  const int ox_int_hi = (l.in_w - k + l.padding) / l.stride;

  for (int oy = band.begin; oy < band.end; ++oy) {
    const int y0 = oy * l.stride - l.padding;
    const int ky_lo = std::clamp(-y0, 0, k);
    const int ky_hi = std::clamp(l.in_h - y0, ky_lo, k);
    const int n_ky = ky_hi - ky_lo;
    float* out_row =
        &out.data[static_cast<std::size_t>(oy - out_top) * out_w * out_c];

    for (int tx0 = 0; tx0 < out_w; tx0 += kOxTile) {
      const int tn = std::min(kOxTile, out_w - tx0);

      // Gather the tile's patches. Only in-bounds taps are copied; the
      // compute below reads exactly the bytes written here.
      for (int t = 0; t < tn; ++t) {
        const int x0 = (tx0 + t) * l.stride - l.padding;
        const int kx_lo = std::clamp(-x0, 0, k);
        const int kx_hi = std::clamp(l.in_w - x0, kx_lo, k);
        seg_lo[t] = kx_lo;
        seg_hi[t] = kx_hi;
        // With padding >= kernel a column can sit entirely in the zero
        // padding (kx_hi == kx_lo); x0 + kx_lo is then out of bounds, so
        // don't even form the source address (the reference path likewise
        // never touches such taps).
        if (kx_hi <= kx_lo) continue;
        float* dst = &panel[static_cast<std::size_t>(t) * k * row_len];
        for (int kyi = 0; kyi < n_ky; ++kyi) {
          const int cy = y0 + ky_lo + kyi - in_row_offset;
          const float* src =
              &in_crop.data[(static_cast<std::size_t>(cy) * l.in_w + x0 +
                             kx_lo) *
                            in_c];
          std::copy_n(src, static_cast<std::size_t>(kx_hi - kx_lo) * in_c,
                      dst + static_cast<std::size_t>(kyi) * row_len +
                          static_cast<std::size_t>(kx_lo) * in_c);
        }
      }

      // Columns whose full kx range is in bounds (`seg_lo == 0 && seg_hi ==
      // k`) form one contiguous t-range of the tile; their whole patch is a
      // single contiguous run, computed in groups of 4/2/1 columns.
      int il = std::clamp(ox_int_lo - tx0, 0, tn);
      int ih = std::clamp(ox_int_hi + 1 - tx0, 0, tn);
      if (ih < il) il = ih = tn;  // no interior columns: all boundary

      // Compute: weight blocks outer so one packed block stays hot across
      // the whole tile of gathered patches.
      const std::size_t col_stride = static_cast<std::size_t>(k) * row_len;
      for (int blk = 0; blk < pk.blocks; ++blk) {
        const float* wblk = pk.block_weights(blk);
        const float* wrun =
            wblk + static_cast<std::size_t>(ky_lo) * row_len * kOcBlock;
        const float* bias = pk.block_bias(blk);
        const int oc0 = blk * kOcBlock;
        const int lanes = std::min(kOcBlock, out_c - oc0);

        const auto finish = [&](const float (&acc)[kOcBlock], int t) {
          float* dst = out_row + static_cast<std::size_t>(tx0 + t) * out_c + oc0;
          if (l.relu) {
            for (int b = 0; b < lanes; ++b)
              dst[b] = acc[b] < 0.0f ? 0.0f : acc[b];
          } else {
            for (int b = 0; b < lanes; ++b) dst[b] = acc[b];
          }
        };
        const auto interior = [&]<int C>(int t) {
          float acc[C][kOcBlock];
          for (int c = 0; c < C; ++c)
            for (int b = 0; b < kOcBlock; ++b) acc[c][b] = bias[b];
          madd_run<C>(&panel[static_cast<std::size_t>(t) * col_stride],
                      col_stride, wrun, n_ky * row_len, acc);
          for (int c = 0; c < C; ++c) finish(acc[c], t + c);
        };
        const auto boundary = [&](int t) {
          float acc[1][kOcBlock];
          for (int b = 0; b < kOcBlock; ++b) acc[0][b] = bias[b];
          const float* patch = &panel[static_cast<std::size_t>(t) * col_stride];
          const int jb = seg_lo[t] * in_c;
          const int seg = (seg_hi[t] - seg_lo[t]) * in_c;
          for (int kyi = 0; kyi < n_ky; ++kyi) {
            madd_run<1>(
                patch + static_cast<std::size_t>(kyi) * row_len + jb, 0,
                wblk + (static_cast<std::size_t>(ky_lo + kyi) * row_len + jb) *
                           kOcBlock,
                seg, acc);
          }
          finish(acc[0], t);
        };

        for (int t = 0; t < il; ++t) boundary(t);
        int t = il;
        for (; t + 4 <= ih; t += 4) interior.operator()<4>(t);
        for (; t + 2 <= ih; t += 2) interior.operator()<2>(t);
        for (; t < ih; ++t) interior.operator()<1>(t);
        for (t = ih; t < tn; ++t) boundary(t);
      }
    }
  }
}

/// Fast maxpool of `band` into `out` (row 0 == absolute row `out_top`).
/// Identical comparisons in identical order as maxpool_forward_rows.
void maxpool_band(const LayerConfig& l, const Tensor& in_crop,
                  int in_row_offset, RowInterval band, int out_top,
                  Tensor& out) {
  const int out_w = l.out_w();
  for (int oy = band.begin; oy < band.end; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      for (int ch = 0; ch < l.in_c; ++ch) {
        float best = -std::numeric_limits<float>::infinity();
        for (int ky = 0; ky < l.kernel; ++ky) {
          const int iy = oy * l.stride + ky;
          if (iy >= l.in_h) continue;
          const int cy = iy - in_row_offset;
          for (int kx = 0; kx < l.kernel; ++kx) {
            const int ix = ox * l.stride + kx;
            if (ix >= l.in_w) continue;
            best = std::max(best, in_crop.at(cy, ix, ch));
          }
        }
        out.at(oy - out_top, ox, ch) = best;
      }
    }
  }
}

/// Splits `rows` output rows into bands for `ctx.pool`. A few bands per
/// worker lets the pool's dynamic chunking absorb uneven band cost.
int band_count(const ExecContext& ctx, int rows) {
  if (ctx.pool == nullptr || ctx.pool->size() <= 1) return 1;
  return std::min(rows, static_cast<int>(ctx.pool->size()) * 4);
}

RowInterval band_of(RowInterval out_rows, int b, int nb) {
  const int rows = out_rows.size();
  return RowInterval{out_rows.begin + rows * b / nb,
                     out_rows.begin + rows * (b + 1) / nb};
}

template <typename BandFn>
void run_banded(const ExecContext& ctx, RowInterval out_rows,
                const BandFn& fn) {
  const int nb = band_count(ctx, out_rows.size());
  if (nb <= 1) {
    fn(out_rows);
    return;
  }
  ctx.pool->parallel_for(static_cast<std::size_t>(nb), [&](std::size_t b) {
    fn(band_of(out_rows, static_cast<int>(b), nb));
  });
}

void require_crop_covers(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows) {
  DE_REQUIRE(!out_rows.empty(), "empty output interval");
  DE_REQUIRE(in_crop.w == layer.in_w && in_crop.c == layer.in_c,
             "input crop extents mismatch");
  const RowInterval needed = input_rows_for(layer, out_rows);
  DE_REQUIRE(in_row_offset <= needed.begin &&
                 in_row_offset + in_crop.h >= needed.end,
             "input crop does not cover the required rows");
}

void require_dst_covers(const LayerConfig& layer, const Tensor& dst,
                        int dst_top, RowInterval out_rows) {
  DE_REQUIRE(dst.w == layer.out_w() && dst.c == layer.out_c,
             "destination extents mismatch");
  DE_REQUIRE(out_rows.begin >= dst_top && out_rows.end - dst_top <= dst.h,
             "destination does not cover the output band");
}

/// Copies absolute rows `rows` of `src` (row 0 == `src_top`) into `dst`
/// (row 0 == `dst_top`); the reference-engine fallback of the _into paths.
void copy_band(const Tensor& src, int src_top, RowInterval rows, Tensor& dst,
               int dst_top) {
  const std::size_t row_floats =
      static_cast<std::size_t>(src.w) * static_cast<std::size_t>(src.c);
  std::copy_n(
      src.data.data() + static_cast<std::size_t>(rows.begin - src_top) * row_floats,
      static_cast<std::size_t>(rows.size()) * row_floats,
      dst.data.data() + static_cast<std::size_t>(rows.begin - dst_top) * row_floats);
}

}  // namespace

Tensor conv_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows,
                         const ConvWeights& w, const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return conv_forward_rows(layer, in_crop, in_row_offset, out_rows, w);
  }
  DE_REQUIRE(layer.kind == LayerKind::kConv, "conv_forward_rows on non-conv");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);

  Tensor out(out_rows.size(), layer.out_w(), layer.out_c);
  PackedKernel scratch;
  const PackedKernel& pk = packed_for(layer, w, ctx, scratch);
  run_banded(ctx, out_rows, [&](RowInterval band) {
    conv_band(layer, in_crop, in_row_offset, band, out_rows.begin, pk, out);
  });
  return out;
}

Tensor maxpool_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return maxpool_forward_rows(layer, in_crop, in_row_offset, out_rows);
  }
  DE_REQUIRE(layer.kind == LayerKind::kMaxPool,
             "maxpool_forward_rows on non-pool");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);

  Tensor out(out_rows.size(), layer.out_w(), layer.out_c);
  run_banded(ctx, out_rows, [&](RowInterval band) {
    maxpool_band(layer, in_crop, in_row_offset, band, out_rows.begin, out);
  });
  return out;
}

void conv_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ConvWeights& w, const ExecContext& ctx,
                            Tensor& dst, int dst_top) {
  require_dst_covers(layer, dst, dst_top, out_rows);
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor band =
        conv_forward_rows(layer, in_crop, in_row_offset, out_rows, w);
    copy_band(band, out_rows.begin, out_rows, dst, dst_top);
    return;
  }
  DE_REQUIRE(layer.kind == LayerKind::kConv, "conv_forward_rows on non-conv");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);
  PackedKernel scratch;
  const PackedKernel& pk = packed_for(layer, w, ctx, scratch);
  run_banded(ctx, out_rows, [&](RowInterval band) {
    conv_band(layer, in_crop, in_row_offset, band, dst_top, pk, dst);
  });
}

void maxpool_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                               int in_row_offset, RowInterval out_rows,
                               const ExecContext& ctx, Tensor& dst,
                               int dst_top) {
  require_dst_covers(layer, dst, dst_top, out_rows);
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor band =
        maxpool_forward_rows(layer, in_crop, in_row_offset, out_rows);
    copy_band(band, out_rows.begin, out_rows, dst, dst_top);
    return;
  }
  DE_REQUIRE(layer.kind == LayerKind::kMaxPool,
             "maxpool_forward_rows on non-pool");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);
  run_banded(ctx, out_rows, [&](RowInterval band) {
    maxpool_band(layer, in_crop, in_row_offset, band, dst_top, dst);
  });
}

void volume_forward_rows_into(std::span<const LayerConfig> volume,
                              const Tensor& in_crop, int in_row_offset,
                              RowInterval last_out,
                              std::span<const ConvWeights> weights,
                              const ExecContext& ctx, Tensor& dst,
                              int dst_top) {
  DE_REQUIRE(weights.size() == volume.size(), "one weight entry per layer");
  DE_REQUIRE(!last_out.empty(), "empty split-part");
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor band =
        volume_forward_rows(volume, in_crop, in_row_offset, last_out, weights);
    require_dst_covers(volume.back(), dst, dst_top, last_out);
    copy_band(band, last_out.begin, last_out, dst, dst_top);
    return;
  }
  const auto per_layer = per_layer_output_rows(volume, last_out);

  // The first layer reads the caller's crop in place; only intermediate
  // layers own their activations, and the last lands in `dst` — the volume
  // adds zero copies of its own.
  const Tensor* cur = &in_crop;
  Tensor held;
  int offset = in_row_offset;
  for (std::size_t i = 0; i + 1 < volume.size(); ++i) {
    const RowInterval out_rows = per_layer[i];
    held = volume[i].kind == LayerKind::kConv
               ? conv_forward_rows(volume[i], *cur, offset, out_rows,
                                   weights[i], ctx)
               : maxpool_forward_rows(volume[i], *cur, offset, out_rows, ctx);
    cur = &held;
    offset = out_rows.begin;
  }
  const auto& last = volume.back();
  if (last.kind == LayerKind::kConv) {
    conv_forward_rows_into(last, *cur, offset, last_out, weights.back(), ctx,
                           dst, dst_top);
  } else {
    maxpool_forward_rows_into(last, *cur, offset, last_out, ctx, dst, dst_top);
  }
}

Tensor volume_forward_rows(std::span<const LayerConfig> volume,
                           const Tensor& in_crop, int in_row_offset,
                           RowInterval last_out,
                           std::span<const ConvWeights> weights,
                           const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return volume_forward_rows(volume, in_crop, in_row_offset, last_out,
                               weights);
  }
  DE_REQUIRE(!volume.empty(), "empty volume");
  DE_REQUIRE(!last_out.empty(), "empty split-part");
  Tensor out(last_out.size(), volume.back().out_w(), volume.back().out_c);
  volume_forward_rows_into(volume, in_crop, in_row_offset, last_out, weights,
                           ctx, out, last_out.begin);
  return out;
}

Tensor volume_forward(std::span<const LayerConfig> volume, const Tensor& in,
                      std::span<const ConvWeights> weights,
                      const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return volume_forward(volume, in, weights);
  }
  DE_REQUIRE(weights.size() == volume.size(), "one weight entry per layer");
  DE_REQUIRE(!volume.empty(), "empty volume");
  DE_REQUIRE(in.h == volume.front().in_h, "full forward input height mismatch");
  return volume_forward_rows(volume, in, 0,
                             RowInterval{0, volume.back().out_h()}, weights,
                             ctx);
}

}  // namespace de::cnn
