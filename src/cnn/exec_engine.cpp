// Fast conv/pool execution front-end (DESIGN.md §execution-engine).
//
// The arithmetic lives in the per-ISA band kernels (exec_kernel_<isa>.cpp,
// shared body in exec_band.inl): pack weights `lanes` output channels
// innermost, gather each output row's patches into the executing thread's
// persistent panel, multiply-accumulate in the reference's per-pixel op
// order. This file owns everything around the kernel: packed-weight
// caching (locked first-touch, so contexts may be shared across threads),
// the 2-D (row bands × oc-block ranges) tile decomposition run across the
// ThreadPool, the fused conv→relu→maxpool epilogue, and volume chaining.
//
// Padding taps are *skipped* exactly like the reference skips them (ky and
// kx clamp to the in-bounds range), never multiplied in as zeros: x + 0.0f
// is not an identity for x == -0.0f, and the bit-exactness contract is
// absolute. The build compiles this directory with -ffp-contract=off so
// neither engine can be fma-contracted differently from the other, and the
// SIMD kernels use explicit mul+add intrinsics — never FMA.
#include "cnn/exec_engine.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "cnn/exec_kernel.hpp"
#include "common/require.hpp"

namespace de::cnn {

const char* to_string(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kReference: return "reference";
    case ExecEngine::kFast: return "fast";
  }
  return "?";
}

ExecEngine exec_engine_from_string(const std::string& name) {
  if (name == "reference") return ExecEngine::kReference;
  if (name == "fast") return ExecEngine::kFast;
  throw Error("unknown exec engine: \"" + name + "\" (want reference|fast)");
}

struct ExecCache::Impl {
  // Guards first-touch packing: two threads sharing a context must not race
  // the map insert (the historical hazard cnn_exec_cache_race_test pins).
  // Entries are packed under the lock and immutable afterwards; the map is
  // node-based, so returned references stay valid across later inserts.
  std::mutex mu;
  std::map<std::pair<const ConvWeights*, int>, detail::PackedKernel> packed;
};

ExecCache::ExecCache() : impl_(std::make_unique<Impl>()) {}
ExecCache::~ExecCache() = default;
ExecCache::ExecCache(ExecCache&&) noexcept = default;
ExecCache& ExecCache::operator=(ExecCache&&) noexcept = default;

namespace {

using detail::BandScratch;
using detail::ConvBandCall;
using detail::ConvBandFn;
using detail::ConvTile;
using detail::PackedKernel;

/// The kernel actually dispatched for `ctx`: explicit ctx.isa, else the
/// process default. Loud failure (not silent fallback) when the forced
/// target cannot run here — a conformance run forced to one ISA must never
/// quietly measure another.
struct KernelTarget {
  KernelIsa isa;
  ConvBandFn fn;
  int lanes;
};

KernelTarget kernel_target(const ExecContext& ctx) {
  const KernelIsa isa =
      ctx.isa == KernelIsa::kAuto ? default_kernel_isa() : ctx.isa;
  DE_REQUIRE(kernel_isa_supported(isa),
             std::string("kernel ISA \"") + to_string(isa) +
                 "\" is not supported on this host/build");
  return {isa, detail::conv_band_fn(isa), detail::kernel_isa_lanes(isa)};
}

int exec_threads(const ExecContext& ctx) {
  return ctx.pool == nullptr ? 1 : static_cast<int>(ctx.pool->size());
}

/// The packed form of `w` at `lanes` wide blocks: from the cache when the
/// context carries one (packing each (weights, lanes) pair at most once per
/// cache, first touch under the cache lock), else packed into the calling
/// thread's scratch — reused across calls, so the no-cache path allocates
/// only until the largest layer has been seen. The cache key is the weights
/// object's address — valid because a ConvWeights belongs to one layer for
/// its whole life in this codebase; the extent assert catches a violation
/// of that assumption.
const PackedKernel& packed_for(const LayerConfig& l, const ConvWeights& w,
                               const ExecContext& ctx, int lanes) {
  if (ctx.cache == nullptr) {
    PackedKernel& scratch = detail::thread_band_scratch().pack;
    detail::pack_weights_into(scratch, l, w, lanes);
    return scratch;
  }
  auto& impl = ctx.cache->impl();
  std::lock_guard lk(impl.mu);
  PackedKernel& slot = impl.packed[{&w, lanes}];
  if (slot.blocks == 0) detail::pack_weights_into(slot, l, w, lanes);
  DE_ASSERT(slot.lanes == lanes && slot.k == l.kernel &&
                slot.row_len == l.kernel * l.in_c &&
                slot.blocks == (l.out_c + lanes - 1) / lanes,
            "cached packed weights belong to a different layer config");
  return slot;
}

/// Runs the 2-D tile decomposition of one conv call. Tiles write disjoint
/// (row, channel-block) regions of `dst`; a single-tile plan runs inline on
/// the calling thread with zero dispatch overhead.
void run_conv_tiles(const LayerConfig& l, const Tensor& in_crop,
                    int in_row_offset, RowInterval out_rows,
                    const PackedKernel& pk, ConvBandFn fn,
                    const ExecContext& ctx, Tensor& dst, int dst_top) {
  const auto plan =
      detail::plan_conv_tiles(out_rows, pk.blocks, exec_threads(ctx));
  const auto run_tile = [&](int i) {
    const ConvTile t = plan.tile(i);
    fn(ConvBandCall{&l, in_crop.data.data(), in_row_offset, t.rows.begin,
                    t.rows.end, dst_top, t.blk_lo, t.blk_hi, &pk,
                    dst.data.data()});
  };
  if (plan.count() <= 1) {
    run_tile(0);
    return;
  }
  ctx.pool->parallel_for(static_cast<std::size_t>(plan.count()),
                         [&](std::size_t i) { run_tile(static_cast<int>(i)); });
}

/// Fused conv→(relu)→maxpool tile: pool output rows `t.rows` × conv packed
/// blocks [t.blk_lo, t.blk_hi). Conv rows are produced on demand by the
/// band kernel into the thread's rolling window of pool.kernel rows (slot =
/// conv row % window height — rows alive together always span less than
/// one window, so slots never collide), then pooled with exactly the
/// reference's comparison order over the tile's channel range.
void conv_pool_tile(const LayerConfig& cl, const LayerConfig& pl,
                    const Tensor& in_crop, int in_row_offset, ConvTile t,
                    int out_top, const PackedKernel& pk, ConvBandFn fn,
                    Tensor& dst) {
  const int s = pl.stride;
  const int kp = pl.kernel;
  const int conv_h = cl.out_h();
  const int cw = cl.out_w();
  const int cc = cl.out_c;
  const int pw = pl.out_w();
  const std::size_t row_floats = static_cast<std::size_t>(cw) * cc;
  BandScratch& scratch = detail::thread_band_scratch();
  float* ring = BandScratch::ensure(scratch.ring,
                                    static_cast<std::size_t>(kp) * row_floats);
  const int ch_lo = t.blk_lo * pk.lanes;
  const int ch_hi = std::min(cc, t.blk_hi * pk.lanes);

  int next_row = t.rows.begin * s;  // lowest conv row not yet in the window
  for (int oy = t.rows.begin; oy < t.rows.end; ++oy) {
    const int lo = oy * s;
    const int hi = std::min(lo + kp, conv_h);
    for (int cy = std::max(lo, next_row); cy < hi; ++cy) {
      const int slot = cy % kp;
      fn(ConvBandCall{&cl, in_crop.data.data(), in_row_offset, cy, cy + 1,
                      cy - slot, t.blk_lo, t.blk_hi, &pk, ring});
    }
    next_row = std::max(next_row, hi);

    float* drow = &dst.data[static_cast<std::size_t>(oy - out_top) * pw * cc];
    for (int ox = 0; ox < pw; ++ox) {
      for (int ch = ch_lo; ch < ch_hi; ++ch) {
        float best = -std::numeric_limits<float>::infinity();
        for (int ky = 0; ky < kp; ++ky) {
          const int iy = oy * s + ky;
          if (iy >= conv_h) continue;
          const float* rrow = ring + static_cast<std::size_t>(iy % kp) * row_floats;
          for (int kx = 0; kx < kp; ++kx) {
            const int ix = ox * s + kx;
            if (ix >= cw) continue;
            best = std::max(best, rrow[static_cast<std::size_t>(ix) * cc + ch]);
          }
        }
        drow[static_cast<std::size_t>(ox) * cc + ch] = best;
      }
    }
  }
}

/// Fast maxpool of `band` into `out` (row 0 == absolute row `out_top`).
/// Identical comparisons in identical order as maxpool_forward_rows.
void maxpool_band(const LayerConfig& l, const Tensor& in_crop,
                  int in_row_offset, RowInterval band, int out_top,
                  Tensor& out) {
  const int out_w = l.out_w();
  for (int oy = band.begin; oy < band.end; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      for (int ch = 0; ch < l.in_c; ++ch) {
        float best = -std::numeric_limits<float>::infinity();
        for (int ky = 0; ky < l.kernel; ++ky) {
          const int iy = oy * l.stride + ky;
          if (iy >= l.in_h) continue;
          const int cy = iy - in_row_offset;
          for (int kx = 0; kx < l.kernel; ++kx) {
            const int ix = ox * l.stride + kx;
            if (ix >= l.in_w) continue;
            best = std::max(best, in_crop.at(cy, ix, ch));
          }
        }
        out.at(oy - out_top, ox, ch) = best;
      }
    }
  }
}

/// Splits `rows` output rows into bands for `ctx.pool` (pool layers — no
/// channel-block dimension to tile). A few bands per worker lets the pool's
/// dynamic chunking absorb uneven band cost.
int band_count(const ExecContext& ctx, int rows) {
  if (ctx.pool == nullptr || ctx.pool->size() <= 1) return 1;
  return std::min(rows, static_cast<int>(ctx.pool->size()) * 4);
}

RowInterval band_of(RowInterval out_rows, int b, int nb) {
  const int rows = out_rows.size();
  return RowInterval{out_rows.begin + rows * b / nb,
                     out_rows.begin + rows * (b + 1) / nb};
}

template <typename BandFn>
void run_banded(const ExecContext& ctx, RowInterval out_rows,
                const BandFn& fn) {
  const int nb = band_count(ctx, out_rows.size());
  if (nb <= 1) {
    fn(out_rows);
    return;
  }
  ctx.pool->parallel_for(static_cast<std::size_t>(nb), [&](std::size_t b) {
    fn(band_of(out_rows, static_cast<int>(b), nb));
  });
}

void require_crop_covers(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows) {
  DE_REQUIRE(!out_rows.empty(), "empty output interval");
  DE_REQUIRE(in_crop.w == layer.in_w && in_crop.c == layer.in_c,
             "input crop extents mismatch");
  const RowInterval needed = input_rows_for(layer, out_rows);
  DE_REQUIRE(in_row_offset <= needed.begin &&
                 in_row_offset + in_crop.h >= needed.end,
             "input crop does not cover the required rows");
}

void require_dst_covers(const LayerConfig& layer, const Tensor& dst,
                        int dst_top, RowInterval out_rows) {
  DE_REQUIRE(dst.w == layer.out_w() && dst.c == layer.out_c,
             "destination extents mismatch");
  DE_REQUIRE(out_rows.begin >= dst_top && out_rows.end - dst_top <= dst.h,
             "destination does not cover the output band");
}

/// Copies absolute rows `rows` of `src` (row 0 == `src_top`) into `dst`
/// (row 0 == `dst_top`); the reference-engine fallback of the _into paths.
void copy_band(const Tensor& src, int src_top, RowInterval rows, Tensor& dst,
               int dst_top) {
  const std::size_t row_floats =
      static_cast<std::size_t>(src.w) * static_cast<std::size_t>(src.c);
  std::copy_n(
      src.data.data() + static_cast<std::size_t>(rows.begin - src_top) * row_floats,
      static_cast<std::size_t>(rows.size()) * row_floats,
      dst.data.data() + static_cast<std::size_t>(rows.begin - dst_top) * row_floats);
}

}  // namespace

Tensor conv_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows,
                         const ConvWeights& w, const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return conv_forward_rows(layer, in_crop, in_row_offset, out_rows, w);
  }
  DE_REQUIRE(layer.kind == LayerKind::kConv, "conv_forward_rows on non-conv");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);

  Tensor out(out_rows.size(), layer.out_w(), layer.out_c);
  const KernelTarget target = kernel_target(ctx);
  const PackedKernel& pk = packed_for(layer, w, ctx, target.lanes);
  run_conv_tiles(layer, in_crop, in_row_offset, out_rows, pk, target.fn, ctx,
                 out, out_rows.begin);
  return out;
}

Tensor maxpool_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return maxpool_forward_rows(layer, in_crop, in_row_offset, out_rows);
  }
  DE_REQUIRE(layer.kind == LayerKind::kMaxPool,
             "maxpool_forward_rows on non-pool");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);

  Tensor out(out_rows.size(), layer.out_w(), layer.out_c);
  run_banded(ctx, out_rows, [&](RowInterval band) {
    maxpool_band(layer, in_crop, in_row_offset, band, out_rows.begin, out);
  });
  return out;
}

void conv_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows,
                            const ConvWeights& w, const ExecContext& ctx,
                            Tensor& dst, int dst_top) {
  require_dst_covers(layer, dst, dst_top, out_rows);
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor band =
        conv_forward_rows(layer, in_crop, in_row_offset, out_rows, w);
    copy_band(band, out_rows.begin, out_rows, dst, dst_top);
    return;
  }
  DE_REQUIRE(layer.kind == LayerKind::kConv, "conv_forward_rows on non-conv");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);
  const KernelTarget target = kernel_target(ctx);
  const PackedKernel& pk = packed_for(layer, w, ctx, target.lanes);
  run_conv_tiles(layer, in_crop, in_row_offset, out_rows, pk, target.fn, ctx,
                 dst, dst_top);
}

void maxpool_forward_rows_into(const LayerConfig& layer, const Tensor& in_crop,
                               int in_row_offset, RowInterval out_rows,
                               const ExecContext& ctx, Tensor& dst,
                               int dst_top) {
  require_dst_covers(layer, dst, dst_top, out_rows);
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor band =
        maxpool_forward_rows(layer, in_crop, in_row_offset, out_rows);
    copy_band(band, out_rows.begin, out_rows, dst, dst_top);
    return;
  }
  DE_REQUIRE(layer.kind == LayerKind::kMaxPool,
             "maxpool_forward_rows on non-pool");
  require_crop_covers(layer, in_crop, in_row_offset, out_rows);
  run_banded(ctx, out_rows, [&](RowInterval band) {
    maxpool_band(layer, in_crop, in_row_offset, band, dst_top, dst);
  });
}

bool can_fuse_conv_pool(const LayerConfig& conv, const LayerConfig& pool) {
  return conv.kind == LayerKind::kConv && pool.kind == LayerKind::kMaxPool &&
         pool.in_w == conv.out_w() && pool.in_h == conv.out_h() &&
         pool.in_c == conv.out_c && pool.padding == 0;
}

void conv_pool_forward_rows_into(const LayerConfig& conv,
                                 const LayerConfig& pool, const Tensor& in_crop,
                                 int in_row_offset, RowInterval out_rows,
                                 const ConvWeights& w, const ExecContext& ctx,
                                 Tensor& dst, int dst_top) {
  DE_REQUIRE(can_fuse_conv_pool(conv, pool),
             "conv_pool_forward_rows on a pair that does not fuse");
  DE_REQUIRE(!out_rows.empty(), "empty output interval");
  require_dst_covers(pool, dst, dst_top, out_rows);
  const RowInterval conv_rows = input_rows_for(pool, out_rows);
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor conv_out =
        conv_forward_rows(conv, in_crop, in_row_offset, conv_rows, w);
    const Tensor pooled =
        maxpool_forward_rows(pool, conv_out, conv_rows.begin, out_rows);
    copy_band(pooled, out_rows.begin, out_rows, dst, dst_top);
    return;
  }
  require_crop_covers(conv, in_crop, in_row_offset, conv_rows);
  const KernelTarget target = kernel_target(ctx);
  const PackedKernel& pk = packed_for(conv, w, ctx, target.lanes);
  const auto plan =
      detail::plan_conv_tiles(out_rows, pk.blocks, exec_threads(ctx));
  const auto run_tile = [&](int i) {
    conv_pool_tile(conv, pool, in_crop, in_row_offset, plan.tile(i), dst_top,
                   pk, target.fn, dst);
  };
  if (plan.count() <= 1) {
    run_tile(0);
    return;
  }
  ctx.pool->parallel_for(static_cast<std::size_t>(plan.count()),
                         [&](std::size_t i) { run_tile(static_cast<int>(i)); });
}

Tensor conv_pool_forward_rows(const LayerConfig& conv, const LayerConfig& pool,
                              const Tensor& in_crop, int in_row_offset,
                              RowInterval out_rows, const ConvWeights& w,
                              const ExecContext& ctx) {
  DE_REQUIRE(!out_rows.empty(), "empty output interval");
  Tensor out(out_rows.size(), pool.out_w(), pool.out_c);
  conv_pool_forward_rows_into(conv, pool, in_crop, in_row_offset, out_rows, w,
                              ctx, out, out_rows.begin);
  return out;
}

void volume_forward_rows_into(std::span<const LayerConfig> volume,
                              const Tensor& in_crop, int in_row_offset,
                              RowInterval last_out,
                              std::span<const ConvWeights> weights,
                              const ExecContext& ctx, Tensor& dst,
                              int dst_top) {
  DE_REQUIRE(weights.size() == volume.size(), "one weight entry per layer");
  DE_REQUIRE(!last_out.empty(), "empty split-part");
  if (ctx.engine == ExecEngine::kReference) {
    const Tensor band =
        volume_forward_rows(volume, in_crop, in_row_offset, last_out, weights);
    require_dst_covers(volume.back(), dst, dst_top, last_out);
    copy_band(band, last_out.begin, last_out, dst, dst_top);
    return;
  }
  const auto per_layer = per_layer_output_rows(volume, last_out);

  // The first layer reads the caller's crop in place; only intermediate
  // layers own their activations, and the last lands in `dst` — the volume
  // adds zero copies of its own. Conv layers whose entire output feeds the
  // next maxpool are fused: the conv activation is never materialized at
  // all (see conv_pool_forward_rows).
  const Tensor* cur = &in_crop;
  Tensor held;
  int offset = in_row_offset;
  std::size_t i = 0;
  for (;;) {
    const bool fuse = ctx.fuse_conv_pool && i + 1 < volume.size() &&
                      can_fuse_conv_pool(volume[i], volume[i + 1]);
    const std::size_t last_i = fuse ? i + 1 : i;
    if (last_i + 1 == volume.size()) {
      if (fuse) {
        conv_pool_forward_rows_into(volume[i], volume[i + 1], *cur, offset,
                                    last_out, weights[i], ctx, dst, dst_top);
      } else if (volume[i].kind == LayerKind::kConv) {
        conv_forward_rows_into(volume[i], *cur, offset, last_out, weights[i],
                               ctx, dst, dst_top);
      } else {
        maxpool_forward_rows_into(volume[i], *cur, offset, last_out, ctx, dst,
                                  dst_top);
      }
      return;
    }
    const RowInterval out_rows = per_layer[last_i];
    held = fuse ? conv_pool_forward_rows(volume[i], volume[i + 1], *cur,
                                         offset, out_rows, weights[i], ctx)
           : volume[i].kind == LayerKind::kConv
               ? conv_forward_rows(volume[i], *cur, offset, out_rows,
                                   weights[i], ctx)
               : maxpool_forward_rows(volume[i], *cur, offset, out_rows, ctx);
    cur = &held;
    offset = out_rows.begin;
    i = last_i + 1;
  }
}

Tensor volume_forward_rows(std::span<const LayerConfig> volume,
                           const Tensor& in_crop, int in_row_offset,
                           RowInterval last_out,
                           std::span<const ConvWeights> weights,
                           const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return volume_forward_rows(volume, in_crop, in_row_offset, last_out,
                               weights);
  }
  DE_REQUIRE(!volume.empty(), "empty volume");
  DE_REQUIRE(!last_out.empty(), "empty split-part");
  Tensor out(last_out.size(), volume.back().out_w(), volume.back().out_c);
  volume_forward_rows_into(volume, in_crop, in_row_offset, last_out, weights,
                           ctx, out, last_out.begin);
  return out;
}

Tensor volume_forward(std::span<const LayerConfig> volume, const Tensor& in,
                      std::span<const ConvWeights> weights,
                      const ExecContext& ctx) {
  if (ctx.engine == ExecEngine::kReference) {
    return volume_forward(volume, in, weights);
  }
  DE_REQUIRE(weights.size() == volume.size(), "one weight entry per layer");
  DE_REQUIRE(!volume.empty(), "empty volume");
  DE_REQUIRE(in.h == volume.front().in_h, "full forward input height mismatch");
  return volume_forward_rows(volume, in, 0,
                             RowInterval{0, volume.back().out_h()}, weights,
                             ctx);
}

std::uint64_t exec_scratch_allocs() { return detail::scratch_grow_count(); }

}  // namespace de::cnn
