#include "cnn/model_zoo.hpp"

#include "common/require.hpp"

namespace de::cnn {

CnnModel vgg16() {
  return ModelBuilder("vgg16", 224, 224, 3)
      .conv_same_n(2, 64, 3)
      .maxpool(2, 2)
      .conv_same_n(2, 128, 3)
      .maxpool(2, 2)
      .conv_same_n(3, 256, 3)
      .maxpool(2, 2)
      .conv_same_n(3, 512, 3)
      .maxpool(2, 2)
      .conv_same_n(3, 512, 3)
      .maxpool(2, 2)
      .fc(4096)
      .fc(4096)
      .fc(1000)
      .build();
}

namespace {
/// One ResNet bottleneck as a sequential 1x1 -> 3x3 -> 1x1 triple.
void bottleneck(ModelBuilder& b, int mid_c, int out_c, int stride) {
  b.conv(mid_c, 1, 1, 0);
  b.conv(mid_c, 3, stride, 1);
  b.conv(out_c, 1, 1, 0);
}
}  // namespace

CnnModel resnet50() {
  ModelBuilder b("resnet50", 224, 224, 3);
  b.conv(64, 7, 2, 3);       // stem: 112x112x64
  b.maxpool(3, 2);           // 55x55 (floor) — close enough to the 56 grid
  for (int i = 0; i < 3; ++i) bottleneck(b, 64, 256, 1);
  bottleneck(b, 128, 512, 2);
  for (int i = 0; i < 3; ++i) bottleneck(b, 128, 512, 1);
  bottleneck(b, 256, 1024, 2);
  for (int i = 0; i < 5; ++i) bottleneck(b, 256, 1024, 1);
  bottleneck(b, 512, 2048, 2);
  for (int i = 0; i < 2; ++i) bottleneck(b, 512, 2048, 1);
  b.fc(1000);
  return b.build();
}

CnnModel inception_v3() {
  ModelBuilder b("inception_v3", 299, 299, 3);
  b.conv(32, 3, 2, 0);   // 149
  b.conv(32, 3, 1, 0);   // 147
  b.conv(64, 3, 1, 1);   // 147
  b.maxpool(3, 2);       // 73
  b.conv(80, 1, 1, 0);
  b.conv(192, 3, 1, 0);  // 71
  b.maxpool(3, 2);       // 35
  // Three Inception-A blocks (chain-equivalent convs at 35x35, 256->288 ch).
  b.conv_same(256, 3);
  b.conv_same(288, 3);
  b.conv_same(288, 3);
  b.conv(768, 3, 2, 0);  // grid reduction -> 17x17x768
  // Four Inception-B blocks at 17x17x768.
  b.conv_same_n(4, 768, 3);
  b.conv(1280, 3, 2, 0);  // grid reduction -> 8x8
  // Two Inception-C blocks at 8x8.
  b.conv_same(2048, 3);
  b.conv_same(2048, 3);
  b.fc(1000);
  return b.build();
}

CnnModel yolov2() {
  ModelBuilder b("yolov2", 416, 416, 3);
  b.conv_same(32, 3);
  b.maxpool(2, 2);  // 208
  b.conv_same(64, 3);
  b.maxpool(2, 2);  // 104
  b.conv_same(128, 3);
  b.conv(64, 1, 1, 0);
  b.conv_same(128, 3);
  b.maxpool(2, 2);  // 52
  b.conv_same(256, 3);
  b.conv(128, 1, 1, 0);
  b.conv_same(256, 3);
  b.maxpool(2, 2);  // 26
  b.conv_same(512, 3);
  b.conv(256, 1, 1, 0);
  b.conv_same(512, 3);
  b.conv(256, 1, 1, 0);
  b.conv_same(512, 3);
  b.maxpool(2, 2);  // 13
  b.conv_same(1024, 3);
  b.conv(512, 1, 1, 0);
  b.conv_same(1024, 3);
  b.conv(512, 1, 1, 0);
  b.conv_same(1024, 3);
  // Detection head.
  b.conv_same(1024, 3);
  b.conv_same(1024, 3);
  b.conv(425, 1, 1, 0, /*relu=*/false);
  return b.build();
}

CnnModel ssd_vgg16() {
  ModelBuilder b("ssd_vgg16", 300, 300, 3);
  b.conv_same_n(2, 64, 3);
  b.maxpool(2, 2);  // 150
  b.conv_same_n(2, 128, 3);
  b.maxpool(2, 2);  // 75
  b.conv_same_n(3, 256, 3);
  b.maxpool(2, 2);  // 37
  b.conv_same_n(3, 512, 3);
  b.maxpool(2, 2);  // 18
  b.conv_same_n(3, 512, 3);
  b.maxpool(3, 1);  // pool5: 3x3 stride 1 -> 16
  b.conv_same(1024, 3);    // fc6 as conv
  b.conv(1024, 1, 1, 0);   // fc7 as conv
  b.conv(256, 1, 1, 0);    // conv8_1
  b.conv(512, 3, 2, 1);    // conv8_2 -> 8
  b.conv(128, 1, 1, 0);    // conv9_1
  b.conv(256, 3, 2, 1);    // conv9_2 -> 4
  b.conv(128, 1, 1, 0);    // conv10_1
  b.conv(256, 3, 1, 0);    // conv10_2 -> 2
  return b.build();
}

CnnModel ssd_resnet50() {
  ModelBuilder b("ssd_resnet50", 300, 300, 3);
  b.conv(64, 7, 2, 3);  // 150
  b.maxpool(3, 2);      // 74
  for (int i = 0; i < 3; ++i) bottleneck(b, 64, 256, 1);
  bottleneck(b, 128, 512, 2);  // 37
  for (int i = 0; i < 3; ++i) bottleneck(b, 128, 512, 1);
  bottleneck(b, 256, 1024, 2);  // 19
  for (int i = 0; i < 5; ++i) bottleneck(b, 256, 1024, 1);
  // SSD extra feature layers.
  b.conv(256, 1, 1, 0);
  b.conv(512, 3, 2, 1);  // 10
  b.conv(128, 1, 1, 0);
  b.conv(256, 3, 2, 1);  // 5
  b.conv(128, 1, 1, 0);
  b.conv(256, 3, 1, 0);  // 3
  return b.build();
}

CnnModel openpose() {
  ModelBuilder b("openpose", 368, 368, 3);
  // VGG-19 front-end through conv4_2.
  b.conv_same_n(2, 64, 3);
  b.maxpool(2, 2);  // 184
  b.conv_same_n(2, 128, 3);
  b.maxpool(2, 2);  // 92
  b.conv_same_n(4, 256, 3);
  b.maxpool(2, 2);  // 46
  b.conv_same_n(2, 512, 3);
  // CPM feature adaptation.
  b.conv_same(256, 3);
  b.conv_same(128, 3);
  // Stage 1 (both branches merged into one chain of matching width).
  b.conv_same_n(3, 128, 3);
  b.conv(512, 1, 1, 0);
  b.conv(57, 1, 1, 0, /*relu=*/false);  // 38 PAFs + 19 heatmaps
  // Stage 2 refinement (7x7 receptive blocks).
  b.conv(128, 7, 1, 3);
  b.conv(128, 7, 1, 3);
  b.conv(128, 7, 1, 3);
  b.conv(128, 7, 1, 3);
  b.conv(128, 7, 1, 3);
  b.conv(128, 1, 1, 0);
  b.conv(57, 1, 1, 0, /*relu=*/false);
  return b.build();
}

CnnModel voxelnet() {
  // BEV pseudo-image after the voxel feature encoder (the VFE output is a
  // 400x352x128 dense tensor); the chain below is the middle conv extractor
  // + region-proposal network, with 3D convs flattened to their 2D
  // per-BEV-cell equivalents.
  ModelBuilder b("voxelnet", 352, 400, 128);
  b.conv_same(64, 3);
  b.conv(64, 3, 2, 1);  // 200
  b.conv_same(64, 3);
  // RPN block 1.
  b.conv(128, 3, 2, 1);  // 100
  b.conv_same_n(3, 128, 3);
  // RPN block 2.
  b.conv(128, 3, 2, 1);  // 50
  b.conv_same_n(5, 128, 3);
  // RPN block 3.
  b.conv(256, 3, 2, 1);  // 25
  b.conv_same_n(5, 256, 3);
  // Heads (score + regression as one chain tail).
  b.conv(14, 1, 1, 0, /*relu=*/false);
  return b.build();
}

CnnModel edgenet() {
  // SqueezeNet-style pointwise-dominated chain (fire modules flattened to
  // sequential squeeze-1x1 / expand-1x1 pairs): the edge-inference family
  // whose FLOPs per activation byte are tiny, so a cluster serving it is
  // bound by the data plane rather than the conv kernels.
  ModelBuilder b("edgenet", 160, 160, 3);
  b.conv(24, 3, 2, 1);  // stem: 80x80x24
  b.conv(12, 1, 1, 0);  // fire 1
  b.conv(48, 1, 1, 0);
  b.conv(12, 1, 1, 0);  // fire 2
  b.conv(48, 1, 1, 0);
  b.maxpool(2, 2);      // 40x40
  b.conv(16, 1, 1, 0);  // fire 3
  b.conv(64, 1, 1, 0);
  b.conv(16, 1, 1, 0);  // fire 4
  b.conv(64, 1, 1, 0);
  b.maxpool(2, 2);      // 20x20
  b.conv(24, 1, 1, 0);  // fire 5: squeeze, then a 3x3 expand head
  b.conv(96, 3, 1, 1);
  return b.build();
}

CnnModel model_by_name(const std::string& name) {
  if (name == "vgg16") return vgg16();
  if (name == "resnet50") return resnet50();
  if (name == "inception_v3") return inception_v3();
  if (name == "yolov2") return yolov2();
  if (name == "ssd_vgg16") return ssd_vgg16();
  if (name == "ssd_resnet50") return ssd_resnet50();
  if (name == "openpose") return openpose();
  if (name == "voxelnet") return voxelnet();
  if (name == "edgenet") return edgenet();
  throw Error("unknown model: " + name);
}

std::vector<std::string> zoo_names() {
  return {"vgg16",      "resnet50",     "inception_v3", "yolov2",
          "ssd_vgg16",  "ssd_resnet50", "openpose",     "voxelnet",
          "edgenet"};
}

}  // namespace de::cnn
