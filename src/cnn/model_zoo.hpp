// The eight CNN models of the paper's evaluation (§V-E), as sequential
// layer-config chains.
//
// DistrEdge (like the baselines it compares to) plans over sequentially
// connected conv/pool chains (paper §III-C.4). Branching architectures
// (ResNet, Inception, SSD heads, OpenPose branches, VoxelNet middle layers)
// are therefore encoded as their sequential conv-chain equivalents: the chain
// visits the same spatial resolutions and channel widths as the original
// backbone, so per-layer configuration statistics — the only thing any
// planner here consumes — match the originals. See DESIGN.md (substitutions).
#pragma once

#include <string>
#include <vector>

#include "cnn/model.hpp"

namespace de::cnn {

CnnModel vgg16();          ///< 224x224x3, 13 conv + 5 pool + 3 FC
CnnModel resnet50();       ///< 224x224x3, bottleneck chain + FC
CnnModel inception_v3();   ///< 299x299x3, stem + block-equivalent chain + FC
CnnModel yolov2();         ///< 416x416x3, Darknet-19 + detection head
CnnModel ssd_vgg16();      ///< 300x300x3, VGG base + extra feature layers
CnnModel ssd_resnet50();   ///< 300x300x3, ResNet base + extra feature layers
CnnModel openpose();       ///< 368x368x3, VGG19 front + CPM stages
CnnModel voxelnet();       ///< 400x352 BEV pseudo-image + RPN chain
/// Compact edge-tier streaming classifier (160x160x3, ~0.07 GFLOP; a
/// SqueezeNet-style pointwise-dominated chain). Unlike the paper-era
/// heavyweights above, its FLOPs are small next to its activation
/// footprint — the regime where the cluster's data plane, not the conv
/// kernels, bounds end-to-end IPS. bench/runtime_stream and the CI
/// streaming smoke run on it.
CnnModel edgenet();

/// Lookup by canonical name ("vgg16", "resnet50", ...). Throws on unknown.
CnnModel model_by_name(const std::string& name);

/// Names in the order the paper's Figs. 10-11 list them (VGG-16 first).
std::vector<std::string> zoo_names();

}  // namespace de::cnn
