#include "cnn/model.hpp"

#include "common/require.hpp"

namespace de::cnn {

CnnModel::CnnModel(std::string name, std::vector<LayerConfig> layers,
                   std::vector<FcConfig> fc_tail)
    : name_(std::move(name)), layers_(std::move(layers)), fc_tail_(std::move(fc_tail)) {
  validate();
}

const LayerConfig& CnnModel::layer(int i) const {
  DE_REQUIRE(i >= 0 && i < num_layers(), "layer index out of range");
  return layers_[static_cast<std::size_t>(i)];
}

std::span<const LayerConfig> CnnModel::slice(int first, int last) const {
  DE_REQUIRE(0 <= first && first < last && last <= num_layers(),
             "invalid layer slice [" + std::to_string(first) + "," +
                 std::to_string(last) + ")");
  return std::span<const LayerConfig>(layers_).subspan(
      static_cast<std::size_t>(first), static_cast<std::size_t>(last - first));
}

Bytes CnnModel::input_bytes() const {
  return layers_.front().input_bytes();
}

Bytes CnnModel::result_bytes() const {
  if (!fc_tail_.empty()) return fc_tail_.back().output_bytes();
  return layers_.back().output_bytes();
}

Ops CnnModel::total_ops() const { return conv_chain_ops() + fc_ops(); }

Ops CnnModel::conv_chain_ops() const {
  Ops total = 0;
  for (const auto& l : layers_) total += l.ops();
  return total;
}

Ops CnnModel::fc_ops() const {
  Ops total = 0;
  for (const auto& f : fc_tail_) total += f.ops();
  return total;
}

void CnnModel::validate() const {
  DE_REQUIRE(!layers_.empty(), "model has no layers");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].validate();
    if (i > 0) {
      const auto& prev = layers_[i - 1];
      const auto& cur = layers_[i];
      DE_REQUIRE(prev.out_w() == cur.in_w && prev.out_h() == cur.in_h &&
                     prev.out_c == cur.in_c,
                 "layer " + std::to_string(i) + " (" + cur.name +
                     ") does not chain from layer " + std::to_string(i - 1));
    }
  }
  if (!fc_tail_.empty()) {
    const auto& last = layers_.back();
    const int features = last.out_w() * last.out_h() * last.out_c;
    DE_REQUIRE(fc_tail_.front().in_features == features,
               "FC tail does not chain from the conv output");
    for (std::size_t i = 1; i < fc_tail_.size(); ++i) {
      DE_REQUIRE(fc_tail_[i].in_features == fc_tail_[i - 1].out_features,
                 "FC layer " + std::to_string(i) + " does not chain");
    }
  }
}

ModelBuilder::ModelBuilder(std::string name, int in_w, int in_h, int in_c)
    : name_(std::move(name)), w_(in_w), h_(in_h), c_(in_c) {}

ModelBuilder& ModelBuilder::conv(int out_c, int kernel, int stride, int padding,
                                 bool relu) {
  DE_REQUIRE(fc_features_ == 0, "conv after fc tail started");
  auto l = LayerConfig::conv(w_, h_, c_, out_c, kernel, stride, padding, relu);
  l.name = "conv" + std::to_string(layers_.size());
  w_ = l.out_w();
  h_ = l.out_h();
  c_ = l.out_c;
  layers_.push_back(std::move(l));
  return *this;
}

ModelBuilder& ModelBuilder::conv_same(int out_c, int kernel) {
  DE_REQUIRE(kernel % 2 == 1, "conv_same requires an odd kernel");
  return conv(out_c, kernel, 1, kernel / 2);
}

ModelBuilder& ModelBuilder::conv_same_n(int times, int out_c, int kernel) {
  for (int i = 0; i < times; ++i) conv_same(out_c, kernel);
  return *this;
}

ModelBuilder& ModelBuilder::maxpool(int kernel, int stride) {
  DE_REQUIRE(fc_features_ == 0, "pool after fc tail started");
  auto l = LayerConfig::maxpool(w_, h_, c_, kernel, stride);
  l.name = "pool" + std::to_string(layers_.size());
  w_ = l.out_w();
  h_ = l.out_h();
  c_ = l.out_c;
  layers_.push_back(std::move(l));
  return *this;
}

ModelBuilder& ModelBuilder::fc(int out_features) {
  if (fc_features_ == 0) fc_features_ = w_ * h_ * c_;
  FcConfig f;
  f.name = "fc" + std::to_string(fc_.size());
  f.in_features = fc_features_;
  f.out_features = out_features;
  fc_features_ = out_features;
  fc_.push_back(f);
  return *this;
}

CnnModel ModelBuilder::build() {
  return CnnModel(std::move(name_), std::move(layers_), std::move(fc_));
}

}  // namespace de::cnn
