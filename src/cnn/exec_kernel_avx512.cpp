// AVX-512F conv-band target: one 16-lane zmm per block, so the packed
// layout is 16 channels wide (PackedKernel::lanes == 16 — a layout change
// only; every lane remains an independent accumulator chain in reference
// order). Like AVX2, strictly vmulps+vaddps — no FMA, which would round
// a*b+c once where the reference rounds twice.
//
// This TU is the only one compiled with -mavx512f (see CMakeLists); it must
// stay behind runtime dispatch — nothing here may run unless
// kernel_isa_supported(kAvx512).
#include <algorithm>
#include <cstddef>

#include "cnn/exec_kernel.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>

#include "cnn/exec_band.inl"

namespace de::cnn::detail {
namespace {

struct Avx512Traits {
  static constexpr int kLanes = 16;
  // C=8 -> 8 zmm accumulators + 1 weight vector + 1 broadcast out of 32.
  static constexpr int kMaxCols = 8;

  template <int C>
  static inline void madd(const float* __restrict x, std::size_t x_stride,
                          const float* __restrict w, int len,
                          float (&__restrict acc)[C][kLanes]) {
    __m512 a[C];
    for (int c = 0; c < C; ++c) a[c] = _mm512_loadu_ps(acc[c]);
    for (int j = 0; j < len; ++j) {
      const __m512 w0 = _mm512_loadu_ps(w + static_cast<std::size_t>(j) * kLanes);
      for (int c = 0; c < C; ++c) {
        const __m512 v =
            _mm512_set1_ps(x[static_cast<std::size_t>(c) * x_stride + j]);
        a[c] = _mm512_add_ps(a[c], _mm512_mul_ps(v, w0));
      }
    }
    for (int c = 0; c < C; ++c) _mm512_storeu_ps(acc[c], a[c]);
  }
};

void conv_band_avx512(const ConvBandCall& call) {
  conv_band_t<Avx512Traits>(call);
}

}  // namespace

const ConvBandFn kConvBandAvx512 = &conv_band_avx512;

}  // namespace de::cnn::detail

#else  // !__AVX512F__

namespace de::cnn::detail {
const ConvBandFn kConvBandAvx512 = nullptr;
}

#endif
