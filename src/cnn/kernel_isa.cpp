#include "cnn/kernel_isa.hpp"

#include <cstdlib>

#include "cnn/exec_kernel.hpp"
#include "common/require.hpp"

namespace de::cnn {

namespace {

bool cpu_supports(KernelIsa isa) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  switch (isa) {
    case KernelIsa::kGeneric: return true;
    case KernelIsa::kSse2: return __builtin_cpu_supports("sse2");
    case KernelIsa::kAvx2: return __builtin_cpu_supports("avx2");
    case KernelIsa::kAvx512: return __builtin_cpu_supports("avx512f");
    case KernelIsa::kAuto: return false;
  }
  return false;
#else
  return isa == KernelIsa::kGeneric;
#endif
}

KernelIsa resolve_default() {
  if (const char* env = std::getenv("DE_KERNEL_ISA")) {
    const KernelIsa forced = kernel_isa_from_string(env);
    if (forced != KernelIsa::kAuto) {  // "auto" keeps the cpuid ladder
      DE_REQUIRE(kernel_isa_supported(forced),
                 std::string("DE_KERNEL_ISA=") + env +
                     " is not supported on this host/build");
      return forced;
    }
  }
  for (const KernelIsa isa :
       {KernelIsa::kAvx512, KernelIsa::kAvx2, KernelIsa::kSse2}) {
    if (kernel_isa_supported(isa)) return isa;
  }
  return KernelIsa::kGeneric;
}

}  // namespace

const char* to_string(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto: return "auto";
    case KernelIsa::kGeneric: return "generic";
    case KernelIsa::kSse2: return "sse2";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
  }
  return "?";
}

KernelIsa kernel_isa_from_string(const std::string& name) {
  if (name == "auto") return KernelIsa::kAuto;
  if (name == "generic") return KernelIsa::kGeneric;
  if (name == "sse2") return KernelIsa::kSse2;
  if (name == "avx2") return KernelIsa::kAvx2;
  if (name == "avx512") return KernelIsa::kAvx512;
  throw Error("unknown kernel ISA: \"" + name +
              "\" (want auto|generic|sse2|avx2|avx512)");
}

bool kernel_isa_supported(KernelIsa isa) {
  if (isa == KernelIsa::kAuto) return false;
  return detail::conv_band_fn(isa) != nullptr && cpu_supports(isa);
}

std::vector<KernelIsa> supported_kernel_isas() {
  std::vector<KernelIsa> out;
  for (const KernelIsa isa : {KernelIsa::kGeneric, KernelIsa::kSse2,
                              KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (kernel_isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

KernelIsa default_kernel_isa() {
  static const KernelIsa latched = resolve_default();
  return latched;
}

}  // namespace de::cnn
