// Vertical-Splitting Law (paper §III-B, Eq. 1-2) plus the exact
// interval/halo form used by the simulator and cost model.
//
// A split-part of a layer-volume is identified by the interval of *output
// rows of the volume's last layer* it produces. Input requirements propagate
// backwards one layer at a time:
//
//   out rows [a, b)  of a layer  need  input rows [a*S - P, (b-1)*S + F - P)
//
// clipped to the layer's real input extent [0, in_h) (padding supplies the
// missing border rows). The paper's Eq. 1-2 is the unclipped height-only
// special case; both are provided and tested against each other.
#pragma once

#include <span>
#include <vector>

#include "cnn/layer.hpp"

namespace de::cnn {

/// Half-open row interval [begin, end). Empty iff begin >= end.
struct RowInterval {
  int begin = 0;
  int end = 0;

  int size() const { return end > begin ? end - begin : 0; }
  bool empty() const { return size() == 0; }

  bool operator==(const RowInterval&) const = default;

  /// Overlap of two intervals (possibly empty).
  RowInterval intersect(const RowInterval& other) const;
  /// True if `other` is fully contained in *this.
  bool contains(const RowInterval& other) const;
};

/// Input rows of `layer` needed to produce output rows `out` (clipped).
RowInterval input_rows_for(const LayerConfig& layer, RowInterval out);

/// Paper Eq. 1-2: unclipped input height of a volume's first layer given the
/// output height of its last sub-layer. `volume` is front-to-back order.
int vsl_input_height(std::span<const LayerConfig> volume, int out_h_last);

/// Per-layer *output* row intervals of a split-part producing `last_out` on
/// the volume's final layer. result[i] is the output interval of volume[i];
/// result.back() == last_out (clipped to the layer extents).
std::vector<RowInterval> per_layer_output_rows(std::span<const LayerConfig> volume,
                                               RowInterval last_out);

/// Input rows of the volume's *first* layer needed for `last_out`.
RowInterval required_input_rows(std::span<const LayerConfig> volume,
                                RowInterval last_out);

/// Total FLOPs of the split-part (includes halo recompute duplication).
Ops split_part_ops(std::span<const LayerConfig> volume, RowInterval last_out);

/// Per-layer FLOPs of the split-part, same indexing as the volume.
std::vector<Ops> split_part_ops_per_layer(std::span<const LayerConfig> volume,
                                          RowInterval last_out);

}  // namespace de::cnn
