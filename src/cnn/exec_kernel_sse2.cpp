// SSE2 conv-band target (baseline on x86-64): two 4-lane vectors per
// 8-channel block, hand-placed mulps/addps — plain IEEE single-precision
// multiplies and adds, bit-identical to the scalar reference ops and never
// fma-contracted. The explicit form matters: GCC's auto-vectorizer turns
// the generic loop into a shuffle-transpose across j that runs ~5x slower.
#include <algorithm>
#include <cstddef>

#include "cnn/exec_kernel.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>

#include "cnn/exec_band.inl"

namespace de::cnn::detail {
namespace {

struct Sse2Traits {
  static constexpr int kLanes = 8;
  // C=4 -> 8 xmm accumulators + 2 weight vectors + 1 broadcast: fits the 16
  // SSE registers; wider groups spill.
  static constexpr int kMaxCols = 4;

  template <int C>
  static inline void madd(const float* __restrict x, std::size_t x_stride,
                          const float* __restrict w, int len,
                          float (&__restrict acc)[C][kLanes]) {
    __m128 a[C][2];
    for (int c = 0; c < C; ++c) {
      a[c][0] = _mm_loadu_ps(acc[c]);
      a[c][1] = _mm_loadu_ps(acc[c] + 4);
    }
    for (int j = 0; j < len; ++j) {
      const float* wr = w + static_cast<std::size_t>(j) * kLanes;
      const __m128 w0 = _mm_loadu_ps(wr);
      const __m128 w1 = _mm_loadu_ps(wr + 4);
      for (int c = 0; c < C; ++c) {
        const __m128 v =
            _mm_set1_ps(x[static_cast<std::size_t>(c) * x_stride + j]);
        a[c][0] = _mm_add_ps(a[c][0], _mm_mul_ps(v, w0));
        a[c][1] = _mm_add_ps(a[c][1], _mm_mul_ps(v, w1));
      }
    }
    for (int c = 0; c < C; ++c) {
      _mm_storeu_ps(acc[c], a[c][0]);
      _mm_storeu_ps(acc[c] + 4, a[c][1]);
    }
  }
};

void conv_band_sse2(const ConvBandCall& call) { conv_band_t<Sse2Traits>(call); }

}  // namespace

const ConvBandFn kConvBandSse2 = &conv_band_sse2;

}  // namespace de::cnn::detail

#else  // !__SSE2__

namespace de::cnn::detail {
const ConvBandFn kConvBandSse2 = nullptr;
}

#endif
