#include "cnn/layer.hpp"

#include "common/require.hpp"

namespace de::cnn {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kMaxPool: return "maxpool";
  }
  return "?";
}

namespace {
int out_extent(int in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}
}  // namespace

int LayerConfig::out_w() const { return out_extent(in_w, kernel, stride, padding); }
int LayerConfig::out_h() const { return out_extent(in_h, kernel, stride, padding); }

Ops LayerConfig::ops() const { return ops_for_rows(out_h()); }

Ops LayerConfig::ops_for_rows(int rows) const {
  if (rows <= 0) return 0;
  const Ops spatial = static_cast<Ops>(rows) * out_w();
  if (kind == LayerKind::kConv) {
    // 2 ops (mul + add) per MAC.
    return 2 * spatial * out_c * in_c * kernel * kernel;
  }
  // One comparison per window element per output cell.
  return spatial * in_c * kernel * kernel;
}

Bytes LayerConfig::input_bytes() const { return input_bytes_for_rows(in_h); }

Bytes LayerConfig::output_bytes() const { return output_bytes_for_rows(out_h()); }

Bytes LayerConfig::output_bytes_for_rows(int rows) const {
  if (rows <= 0) return 0;
  return static_cast<Bytes>(rows) * out_w() * out_c * kBytesPerElement;
}

Bytes LayerConfig::input_bytes_for_rows(int rows) const {
  if (rows <= 0) return 0;
  return static_cast<Bytes>(rows) * in_w * in_c * kBytesPerElement;
}

Bytes LayerConfig::weight_bytes() const {
  if (kind != LayerKind::kConv) return 0;
  const Bytes weights = static_cast<Bytes>(out_c) * in_c * kernel * kernel;
  return (weights + out_c) * kBytesPerElement;
}

LayerConfig LayerConfig::conv(int in_w, int in_h, int in_c, int out_c, int kernel,
                              int stride, int padding, bool relu) {
  LayerConfig l;
  l.kind = LayerKind::kConv;
  l.in_w = in_w;
  l.in_h = in_h;
  l.in_c = in_c;
  l.out_c = out_c;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  l.relu = relu;
  l.validate();
  return l;
}

LayerConfig LayerConfig::maxpool(int in_w, int in_h, int in_c, int kernel, int stride) {
  LayerConfig l;
  l.kind = LayerKind::kMaxPool;
  l.in_w = in_w;
  l.in_h = in_h;
  l.in_c = in_c;
  l.out_c = in_c;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = 0;
  l.relu = false;
  l.validate();
  return l;
}

void LayerConfig::validate() const {
  DE_REQUIRE(in_w > 0 && in_h > 0 && in_c > 0, "layer input extents positive");
  DE_REQUIRE(out_c > 0, "layer out_c positive");
  DE_REQUIRE(kernel > 0 && stride > 0 && padding >= 0, "layer kernel config");
  DE_REQUIRE(kind == LayerKind::kConv || out_c == in_c, "pool keeps depth");
  DE_REQUIRE(out_w() > 0 && out_h() > 0, "layer output extent non-empty");
  DE_REQUIRE(kernel <= in_w + 2 * padding && kernel <= in_h + 2 * padding,
             "kernel fits padded input");
}

Ops FcConfig::ops() const {
  return 2 * static_cast<Ops>(in_features) * out_features;
}

Bytes FcConfig::output_bytes() const {
  return static_cast<Bytes>(out_features) * kBytesPerElement;
}

Bytes FcConfig::weight_bytes() const {
  return (static_cast<Bytes>(in_features) * out_features + out_features) *
         kBytesPerElement;
}

}  // namespace de::cnn
