#include "cnn/layer_volume.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace de::cnn {

std::vector<LayerVolume> volumes_from_boundaries(const std::vector<int>& boundaries,
                                                 int n_layers) {
  DE_REQUIRE(boundaries.size() >= 2, "need at least {0, n} boundaries");
  DE_REQUIRE(boundaries.front() == 0, "first boundary must be 0");
  DE_REQUIRE(boundaries.back() == n_layers, "last boundary must be n_layers");
  DE_REQUIRE(std::is_sorted(boundaries.begin(), boundaries.end()),
             "boundaries must be sorted");
  std::vector<LayerVolume> volumes;
  volumes.reserve(boundaries.size() - 1);
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    DE_REQUIRE(boundaries[i] < boundaries[i + 1], "duplicate boundary");
    volumes.push_back(LayerVolume{boundaries[i], boundaries[i + 1]});
  }
  return volumes;
}

std::vector<int> boundaries_from_volumes(const std::vector<LayerVolume>& volumes) {
  DE_REQUIRE(!volumes.empty(), "no volumes");
  std::vector<int> b;
  b.reserve(volumes.size() + 1);
  b.push_back(volumes.front().first);
  for (const auto& v : volumes) {
    DE_REQUIRE(v.first == b.back(), "volumes not contiguous");
    b.push_back(v.last);
  }
  return b;
}

std::span<const LayerConfig> volume_layers(const CnnModel& model, const LayerVolume& v) {
  return model.slice(v.first, v.last);
}

int volume_out_height(const CnnModel& model, const LayerVolume& v) {
  return model.layer(v.last - 1).out_h();
}

}  // namespace de::cnn
