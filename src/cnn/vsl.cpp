#include "cnn/vsl.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace de::cnn {

RowInterval RowInterval::intersect(const RowInterval& other) const {
  RowInterval r{std::max(begin, other.begin), std::min(end, other.end)};
  if (r.begin >= r.end) return RowInterval{0, 0};
  return r;
}

bool RowInterval::contains(const RowInterval& other) const {
  if (other.empty()) return true;
  return begin <= other.begin && other.end <= end;
}

RowInterval input_rows_for(const LayerConfig& layer, RowInterval out) {
  if (out.empty()) return RowInterval{0, 0};
  DE_REQUIRE(out.begin >= 0 && out.end <= layer.out_h(),
             "output interval exceeds layer extent");
  int lo = out.begin * layer.stride - layer.padding;
  int hi = (out.end - 1) * layer.stride + layer.kernel - layer.padding;
  lo = std::max(lo, 0);
  hi = std::min(hi, layer.in_h);
  DE_ASSERT(lo < hi, "clipped input interval became empty");
  return RowInterval{lo, hi};
}

int vsl_input_height(std::span<const LayerConfig> volume, int out_h_last) {
  DE_REQUIRE(!volume.empty(), "empty volume");
  DE_REQUIRE(out_h_last >= 1, "vsl needs at least one output row");
  // Eq. 1 applied back-to-front, then Eq. 2 for the first layer; both share
  // the same recurrence h_in = (h_out - 1) * S + F.
  int h = out_h_last;
  for (std::size_t i = volume.size(); i-- > 0;) {
    const auto& l = volume[i];
    h = (h - 1) * l.stride + l.kernel;
  }
  return h;
}

std::vector<RowInterval> per_layer_output_rows(std::span<const LayerConfig> volume,
                                               RowInterval last_out) {
  DE_REQUIRE(!volume.empty(), "empty volume");
  std::vector<RowInterval> out(volume.size());
  RowInterval cur = last_out;
  for (std::size_t i = volume.size(); i-- > 0;) {
    out[i] = cur;
    if (i > 0) {
      // Output rows of layer i-1 are the input rows layer i needs.
      cur = cur.empty() ? RowInterval{0, 0} : input_rows_for(volume[i], cur);
      DE_ASSERT(cur.end <= volume[i - 1].out_h(),
                "propagated interval exceeds producer extent");
    }
  }
  return out;
}

RowInterval required_input_rows(std::span<const LayerConfig> volume,
                                RowInterval last_out) {
  auto per_layer = per_layer_output_rows(volume, last_out);
  if (per_layer.front().empty()) return RowInterval{0, 0};
  return input_rows_for(volume.front(), per_layer.front());
}

std::vector<Ops> split_part_ops_per_layer(std::span<const LayerConfig> volume,
                                          RowInterval last_out) {
  auto per_layer = per_layer_output_rows(volume, last_out);
  std::vector<Ops> ops(volume.size());
  for (std::size_t i = 0; i < volume.size(); ++i) {
    ops[i] = volume[i].ops_for_rows(per_layer[i].size());
  }
  return ops;
}

Ops split_part_ops(std::span<const LayerConfig> volume, RowInterval last_out) {
  Ops total = 0;
  for (Ops o : split_part_ops_per_layer(volume, last_out)) total += o;
  return total;
}

}  // namespace de::cnn
