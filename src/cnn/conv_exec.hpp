// Reference float execution of conv / maxpool layers, including row-sliced
// execution of split-parts.
//
// This is the numerical ground truth behind the Vertical-Splitting Law: a
// volume executed as stitched split-parts (each given only its required
// input rows) must produce bit-identical output to the unsplit volume. The
// threaded runtime and the property tests both use it.
#pragma once

#include <span>
#include <vector>

#include "cnn/layer.hpp"
#include "cnn/vsl.hpp"
#include "common/rng.hpp"

namespace de::cnn {

/// Dense HWC tensor (row-major: index = (y * w + x) * c + ch).
struct Tensor {
  int h = 0;
  int w = 0;
  int c = 0;
  std::vector<float> data;

  Tensor() = default;
  Tensor(int h_, int w_, int c_);

  float& at(int y, int x, int ch);
  float at(int y, int x, int ch) const;
  std::size_t size() const { return data.size(); }
};

/// Conv parameters: weights layout [out_c][ky][kx][in_c], bias [out_c].
struct ConvWeights {
  std::vector<float> weights;
  std::vector<float> bias;

  static ConvWeights random(const LayerConfig& layer, Rng& rng);
};

/// Full-layer forward. `in` must match the layer's input extents.
Tensor conv_forward(const LayerConfig& layer, const Tensor& in, const ConvWeights& w);
Tensor maxpool_forward(const LayerConfig& layer, const Tensor& in);

/// Row-sliced forward: produce output rows `out_rows` of `layer` given a
/// cropped input that starts at absolute input row `in_row_offset`. The
/// crop must cover input_rows_for(layer, out_rows); padding rows outside the
/// real input are zeros (conv) / ignored (pool).
Tensor conv_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                         int in_row_offset, RowInterval out_rows,
                         const ConvWeights& w);
Tensor maxpool_forward_rows(const LayerConfig& layer, const Tensor& in_crop,
                            int in_row_offset, RowInterval out_rows);

/// Executes a whole volume (sequence of layers) on a full input tensor.
/// `weights[i]` must be present for conv layers (ignored for pools).
Tensor volume_forward(std::span<const LayerConfig> volume, const Tensor& in,
                      std::span<const ConvWeights> weights);

/// Executes the split-part of `volume` producing `last_out`, given the
/// cropped volume input (starting at absolute row `in_row_offset`, which
/// must equal required_input_rows(volume, last_out).begin).
Tensor volume_forward_rows(std::span<const LayerConfig> volume, const Tensor& in_crop,
                           int in_row_offset, RowInterval last_out,
                           std::span<const ConvWeights> weights);

}  // namespace de::cnn
