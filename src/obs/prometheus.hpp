// Prometheus text exposition (version 0.0.4) of a MetricsSnapshot — the
// /metrics half of the live ops plane (DESIGN.md §observability, "Ops
// plane"). The registry stays the single naming authority; this file only
// translates one snapshot into the scrape format.
//
// Naming convention: a registry name is `family` or `family{k=v,k2=v2}`.
// The family is sanitized into the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*, every other byte becomes '_'); label keys are
// sanitized the same way and label *values* are escaped per the exposition
// rules (backslash, double-quote, newline). Two registry names that
// sanitize to the same family must be of the same metric kind — the
// exporter groups them under one # TYPE header.
//
// Kinds map as: Counter -> counter, Gauge -> gauge, Histogram -> histogram
// with cumulative `le` buckets on the log2 boundaries (bucket k of
// obs::Histogram holds integer samples in [2^(k-1), 2^k), so its inclusive
// upper bound is 2^k - 1), a final `+Inf` bucket, and `_sum`/`_count`
// series. Counters backed by monotone hot-path atomics stay monotone
// across scrapes — the conformance test in tests/obs/prometheus_test.cpp
// asserts exactly that.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace de::obs {

/// `name` with its optional `{...}` label block split off and both halves
/// normalized: family/keys sanitized into the Prometheus name grammar,
/// label values escaped and double-quoted. Exposed for tests.
struct PromName {
  std::string family;  ///< sanitized metric family name
  std::string labels;  ///< rendered label block incl. braces; "" when none
};
PromName prom_name(std::string_view name);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline get backslash-escaped. Exposed for tests.
std::string prom_escape_label_value(std::string_view value);

/// Renders `snapshot` in the Prometheus text exposition format, one
/// `# TYPE` header per family, histograms with cumulative log2 `le`
/// buckets ending in `+Inf`.
std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace de::obs
