// Cluster-wide tracing plane (DESIGN.md §observability): per-thread
// fixed-size ring buffers of POD span/instant events, written lock-free
// with no allocation on the hot path.
//
// Design constraints, in order:
//  * Disabled cost ~ one relaxed atomic load + branch per site — tracing
//    ships compiled in and off by default; benches gate the enabled cost
//    at < 2% IPS (bench/obs_overhead -> BENCH_obs.json).
//  * Enabled hot path: two steady-clock reads per span plus five relaxed
//    64-bit stores into the calling thread's own ring — no locks, no heap,
//    honoring the data plane's steady-state no-malloc discipline (the ring
//    itself is allocated once, on the thread's first event of a session).
//  * Readers may snapshot while writers are live (the TSan stress test in
//    tests/obs/trace_recorder_test.cpp hammers this): every slot is a tiny
//    seqlock — stamp invalidated before the words are rewritten, republished
//    after — so a snapshot either sees a whole event or rejects the slot,
//    never a torn mix. Wrapped-over (oldest) events are counted as dropped,
//    not silently absorbed.
//
// Correlation model: every event carries the (image seq, volume, epoch)
// ids the wire format already stamps on each chunk, so one image can be
// followed requester -> provider compute bands -> halo exchange -> gather
// -> ack across every node of a cluster. Threads bind once to a node id and
// a role name (obs::bind_thread, which also pthread_setname_np's the OS
// thread); the exporter groups rings by node into per-node Perfetto tracks
// (src/obs/trace_export.*).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace de::obs {

/// Event categories — one per instrumented hot-path site. Stable small ints
/// on the wire-side of the trace (the JSON exporter writes the names).
enum class Cat : std::uint16_t {
  kScatter = 0,      ///< requester: encode+post one image's volume-0 inputs
  kGather,           ///< requester: wait+blit one image's output rows
  kAssemble,         ///< provider: wait for + blit one volume's input crop
  kCompute,          ///< provider: one volume's whole-part compute (serial)
  kComputeBand,      ///< provider: one halo-first band (overlap)
  kHaloPost,         ///< provider: encode one halo/gather band into a frame
  kSenderWrite,      ///< ChunkSender thread: one blocking transport write
  kTxSyscall,        ///< TCP transport: one sendmsg (header+payload)
  kRxSyscall,        ///< TCP transport: one payload read into an arena frame
  kRtoFire,          ///< retransmitter: rto expired, chunk resent
  kNackResend,       ///< retransmitter: nack round triggered resends
  kRecvTimeout,      ///< bounded data wait expired (nack round follows)
  kDupDrop,          ///< receive-side dedup absorbed a repeat
  kParkChunk,        ///< provider: chunk of an unannounced epoch parked
  kEpochRegister,    ///< provider: reconfigure announcement registered
  kEpochPush,        ///< requester: new epoch announced to the providers
  kImageRestart,     ///< provider: image re-mapped mid-wait, restarting
  kReplan,           ///< controller: drift exceeded, planner invoked
  kSwapDecision,     ///< controller: new strategy published for cutover
  kDriftSample,      ///< controller: telemetry tick (arg = drift * 1e3)
  kPoolTask,         ///< ThreadPool::parallel_for claimed iteration
  kPacedSend,        ///< shaped transport pacer: one frame released
  kTelemetryPub,     ///< provider: kTelemetry frame published
  kFrameAlloc,       ///< frame arena had to malloc a fresh buffer
  kHeartbeatPub,     ///< node: kHeartbeat lease renewal published
  kLeaseExpire,      ///< controller: a device's lease lapsed (declared dead)
  kMembershipSwap,   ///< requester: membership change announced to the fleet
  kImageCancel,      ///< in-flight image voided for re-dispatch
  kJoinAdopt,        ///< controller: joiner calibrated and adopted
  kRetxCancel,       ///< retransmitter: dead peer's outbox budget cancelled
  kLaneEvictCat,     ///< provider: retired epoch lane evicted
  kCount
};

/// Human-readable category name (exporter + demos).
const char* cat_name(Cat cat);

/// One trace event: 40 bytes of POD, copied into ring slots as five 64-bit
/// words. dur_us < 0 marks an instant event; seq/volume/epoch are the data
/// plane's correlation ids (-1 = not applicable); arg is category-specific
/// (bytes for I/O categories, counts elsewhere).
struct TraceEvent {
  std::int64_t ts_us = 0;   ///< span begin (process-steady micros)
  std::int32_t dur_us = -1; ///< span duration; < 0 for instants
  std::int32_t seq = -1;    ///< image sequence id
  std::int32_t volume = -1; ///< layer-volume index
  std::int32_t epoch = -1;  ///< strategy epoch
  std::int64_t arg = 0;     ///< bytes / count / category-specific detail
  std::uint16_t cat = 0;    ///< Cat
  std::int16_t node = -1;   ///< cluster node id (-1 = unbound thread)
  std::int32_t stream = -1; ///< owning client stream (-1 = not applicable)
};
static_assert(sizeof(TraceEvent) == 40, "TraceEvent must stay 5 words");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Steady-clock microseconds since a fixed process-wide origin. All threads
/// of one process share this timebase; per-*node* local timebases are a
/// subtraction at export time (trace_export.hpp).
std::int64_t now_us();

struct TraceConfig {
  /// Events retained per thread ring; older events are dropped (counted).
  std::size_t ring_capacity = 1 << 14;
};

/// Everything one thread recorded: its surviving events (oldest first), the
/// count that wrapped away, and the thread's binding.
struct ThreadTrace {
  std::string name;          ///< role name ("provider-2", "pacer", ...)
  int node = -1;             ///< cluster node the thread belongs to
  std::uint64_t dropped = 0; ///< events overwritten before the snapshot
  std::vector<TraceEvent> events;
};

struct TraceDump {
  std::vector<ThreadTrace> threads;
  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;
};

/// Process-global recorder. All methods are thread-safe; record() is
/// lock-free and allocation-free after a thread's first event.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Arms recording. Rings from a previous session are discarded; threads
  /// re-acquire a fresh ring on their next event.
  void enable(const TraceConfig& config = {});
  /// Disarms recording; rings stay readable until the next enable().
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event into the calling thread's ring (no-op when
  /// disabled). The event's `node` field is overwritten from the thread's
  /// binding (bind_thread).
  void record(TraceEvent ev);

  /// Copies every ring's surviving events. Safe while writers are live:
  /// torn slots (being rewritten mid-copy) are skipped and counted as
  /// dropped. Events within one thread are oldest-first.
  TraceDump snapshot() const;

 private:
  TraceRecorder() = default;

  struct Ring;
  struct ThreadSlot;

  Ring* ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> session_{0};
  mutable std::mutex mu_;  ///< rings_ shape + config (cold paths only)
  TraceConfig config_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// Binds the calling thread to a cluster node and role name: names the OS
/// thread (pthread_setname_np, truncated to 15 chars) so debuggers, TSan
/// reports, and traces show roles instead of anonymous TIDs, and tags every
/// event the thread records from here on. node = -1 for node-less threads
/// (pool workers). Safe to call before or after tracing is enabled, and
/// more than once (latest binding wins for future events).
void bind_thread(const std::string& name, int node = -1);

/// Convenience wrappers over TraceRecorder::instance().
inline bool trace_enabled() {
  return TraceRecorder::instance().enabled();
}

/// Records an instant event (dur < 0).
inline void trace_instant(Cat cat, int seq = -1, int volume = -1,
                          int epoch = -1, std::int64_t arg = 0,
                          int stream = -1) {
  auto& rec = TraceRecorder::instance();
  if (!rec.enabled()) return;
  TraceEvent ev;
  ev.ts_us = now_us();
  ev.dur_us = -1;
  ev.cat = static_cast<std::uint16_t>(cat);
  ev.seq = seq;
  ev.volume = volume;
  ev.epoch = epoch;
  ev.arg = arg;
  ev.stream = stream;
  rec.record(ev);
}

/// RAII span: stamps begin on construction, records on destruction. The
/// correlation ids and arg may be filled in (or corrected) mid-span —
/// useful when the ids are only known after a receive completes.
class SpanScope {
 public:
  explicit SpanScope(Cat cat, int seq = -1, int volume = -1, int epoch = -1,
                     std::int64_t arg = 0) {
    if (!trace_enabled()) return;
    armed_ = true;
    ev_.ts_us = now_us();
    ev_.cat = static_cast<std::uint16_t>(cat);
    ev_.seq = seq;
    ev_.volume = volume;
    ev_.epoch = epoch;
    ev_.arg = arg;
  }
  ~SpanScope() {
    if (!armed_) return;
    const std::int64_t dur = now_us() - ev_.ts_us;
    ev_.dur_us =
        static_cast<std::int32_t>(dur < 0 ? 0 : dur > INT32_MAX ? INT32_MAX
                                                                : dur);
    TraceRecorder::instance().record(ev_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void set_ids(int seq, int volume, int epoch) {
    ev_.seq = seq;
    ev_.volume = volume;
    ev_.epoch = epoch;
  }
  void set_arg(std::int64_t arg) { ev_.arg = arg; }
  void add_arg(std::int64_t delta) { ev_.arg += delta; }
  void set_stream(int stream) { ev_.stream = stream; }

 private:
  bool armed_ = false;
  TraceEvent ev_;
};

}  // namespace de::obs
