// Metrics plane (DESIGN.md §observability): counters, gauges, and
// log-bucketed histograms behind one registry, snapshotted per node.
//
// Hot-path updates are single relaxed atomic operations — metric objects
// are created once (registry lookup under a mutex, cold) and then held by
// reference, so recording costs one fetch_add with no allocation and no
// lock. Histograms bucket by powers of two (bucket k covers [2^(k-1), 2^k)
// for k >= 1; bucket 0 is exactly {0}), which makes p50/p95/p99 extraction
// a cumulative walk with log-linear interpolation inside the hit bucket —
// coarse by design (buckets are exact-count, percentiles are estimates with
// bounded relative error <= 2x) and O(64) memory per histogram forever.
//
// The registry is the single naming authority for the runtime's stats: the
// serial and overlap data planes, and the finite-run and streaming paths,
// all fold into the same canonical metric names (runtime/serve.cpp and
// runtime/cluster.cpp share fold_data_plane_metrics), so dashboards and
// tests never chase per-path field drift again.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace de::obs {

class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const {
    return unpack(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t pack(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double unpack(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

/// Percentile-ready view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::array<std::int64_t, kHistogramBuckets> counts{};
  std::int64_t count = 0;  ///< total samples
  std::int64_t sum = 0;    ///< exact sum of samples

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Estimated value at quantile p in [0, 1] (0.5 = p50). Exact for bucket
  /// 0 (zeros); elsewhere linearly interpolated within the hit bucket's
  /// [2^(k-1), 2^k) range. 0 on an empty histogram.
  double percentile(double p) const;
};

/// Log2-bucketed histogram of non-negative integer samples (negative
/// samples clamp to 0). record() is one relaxed fetch_add per of count,
/// bucket, and sum — lock-free and allocation-free.
class Histogram {
 public:
  /// Bucket index of a sample: 0 for 0, otherwise bit_width(v) (so bucket k
  /// spans [2^(k-1), 2^k)). Exposed for the boundary tests.
  static std::size_t bucket_of(std::int64_t v);
  /// Inclusive-exclusive value range [lo, hi) of bucket k.
  static std::pair<std::int64_t, std::int64_t> bucket_range(std::size_t k);

  void record(std::int64_t v);
  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric at snapshot time. Counters fill `count`, gauges `value`,
/// histograms `hist` (plus `count`/`value` with sample count and mean, so
/// uniform consumers can print something sensible for any kind).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t count = 0;
  double value = 0;
  HistogramSnapshot hist;
};

/// Name-ordered snapshot of one registry.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// The sample with `name`, or nullptr.
  const MetricSample* find(std::string_view name) const;
  /// Counter value by name (0 when absent — absent and never-incremented
  /// are indistinguishable on purpose).
  std::int64_t counter(std::string_view name) const;
  /// All metric names, ordered.
  std::vector<std::string> names() const;
};

/// JSON object {"name": value | {histogram fields}} for artifacts/CI.
std::string to_json(const MetricsSnapshot& snapshot);

/// Create-or-get registry. Lookup takes a mutex (do it once, keep the
/// reference — references stay valid for the registry's lifetime); updates
/// through the returned references are lock-free. A name is permanently
/// bound to the kind of its first registration (re-registering under a
/// different kind throws).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace de::obs
