// Live ops plane front door (DESIGN.md §observability, "Ops plane"): a
// tiny HTTP/1.0 server on a loopback listener, serving GET requests from a
// thread-safe route table. One server instance is shared by whatever wants
// to expose state — serve_stream registers /metrics, /healthz, /membership,
// /streams and /trace/dump for its run's lifetime; the front door
// (serve::StreamServer) registers the same set for its tenants.
//
// This is deliberately not a web framework: HTTP/1.0, GET only, one
// request per connection, Connection: close. What it does inherit is the
// PR-8 accept-path hardening from rpc::TcpTransport — the accept loop
// retries EINTR/ECONNABORTED/EPROTO, backs off 2 ms on
// EMFILE/ENFILE/ENOBUFS/ENOMEM instead of dying, finished connection
// threads are reaped on the next accept wakeup (a long-lived endpoint must
// not accrete one dead thread per past scrape), and shutdown wakes the
// blocked accept with ::shutdown *before* closing the listener fd so the
// accept thread never reads a recycled fd number. Connections additionally
// carry a receive timeout so a stalled scraper cannot wedge a serving
// thread forever.
//
// Handlers run on connection threads: they must be safe to call
// concurrently with the owning runtime (scrape-time snapshots, not locks
// over hot paths). A handler registered with route() stays callable until
// unroute() or close() returns — callers that capture stack state must
// unroute before that state dies (runtime/serve.cpp uses a scope guard).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace de::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A GET handler; `query` is the raw string after '?' ("" when absent).
using AdminHandler = std::function<HttpResponse(std::string_view query)>;

/// Value of `key` in a raw `&`-separated query string, or nullopt when the
/// key is absent. Matches whole keys only — query_param("ms=500", "s")
/// misses — unlike a naive find("s="), which would hit the substring.
std::optional<std::string_view> query_param(std::string_view query,
                                            std::string_view key);

class AdminServer {
 public:
  /// Binds a loopback listener (port 0 = kernel-assigned ephemeral port,
  /// readable via port() immediately) and starts the accept thread.
  explicit AdminServer(std::uint16_t port = 0);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Registers (or replaces) the handler for `path` (exact match, no
  /// query). Thread-safe.
  void route(const std::string& path, AdminHandler handler);
  /// Drops `path`'s handler. After unroute() returns, no connection thread
  /// is inside the old handler and none will enter it. Thread-safe.
  void unroute(const std::string& path);

  /// Stops accepting, joins all connection threads, closes the listener.
  /// Idempotent; the destructor calls it.
  void close();

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked(std::vector<std::thread>& out);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool down_ = false;
  std::map<std::string, AdminHandler, std::less<>> routes_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread::id> conn_done_;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` — the scrape client
/// used by tests and bench/obs_overhead's 1 Hz scraper thread.
struct HttpGetResult {
  int status = 0;
  std::string body;
};
/// nullopt on connect/IO failure or unparseable response.
std::optional<HttpGetResult> http_get(std::uint16_t port,
                                      const std::string& path);

}  // namespace de::obs
