// Per-image critical-path attribution (DESIGN.md §observability, "Ops
// plane"): walks a merged trace's (image, volume, epoch) span chain and
// decomposes each delivered image's end-to-end latency into
// scatter / compute / halo_wait / gather_wait, plus a per-device straggler
// score — the fraction of images whose critical path was closed by that
// device's band.
//
// Model: for one image, the requester's kScatter span opens the window and
// its kGather span closes it. Among the provider devices that touched the
// image, the *critical device* is the one whose work chain (kAssemble
// input wait+blit, kCompute / kComputeBand) ends last — every other
// device's result was already waiting, so the gather could not close
// before its rows arrived; the straggler score counts how often each
// device closed a critical path. The window [scatter begin, gather end]
// is partitioned by priority on wall-clock time: scatter first, then time
// at least one provider was computing this image (per-node compute spans
// unioned — providers run in parallel, so this decomposes the latency
// window, not total device-time), then assemble (halo/input wait) time
// not hidden by compute, then the tail from the last provider event to
// gather end as gather_wait. What no span covers is reported as
// `unattributed_us`, never
// silently folded into a component — with a serial data plane and
// in-flight window 1 the residue is small (the acceptance test bounds it
// at 5% of e2e); with deep pipelining queuing gaps legitimately dominate
// and the residue says so.
//
// Works on a MergedTrace so cross-node timestamps are already on one
// clock (trace_export.hpp's ClockSyncBook rebase).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_export.hpp"

namespace de::obs {

struct ImageBreakdown {
  int stream = -1;  ///< owning client stream (-1 single-stream runs)
  int seq = -1;     ///< image sequence id
  int critical_node = -1;  ///< device whose chain closed the critical path
  std::int64_t e2e_us = 0;          ///< scatter begin -> gather end
  std::int64_t scatter_us = 0;      ///< requester encode+post
  std::int64_t compute_us = 0;      ///< >=1 provider computing (union)
  std::int64_t halo_wait_us = 0;    ///< input waits not hidden by compute
  std::int64_t gather_wait_us = 0;  ///< last provider event -> gather end
  std::int64_t unattributed_us = 0; ///< e2e minus the four components
};

struct DeviceStraggler {
  int node = -1;
  std::int64_t images_critical = 0;  ///< images whose path this node closed
  double score = 0;  ///< images_critical / images attributed
};

struct AttributionReport {
  std::vector<ImageBreakdown> images;     ///< ordered by (stream, seq)
  std::vector<DeviceStraggler> devices;   ///< ordered by node id
  std::int64_t images_attributed = 0;

  /// The straggler entry for `node`, or nullptr.
  const DeviceStraggler* device(int node) const;
};

/// Attributes every image in `merged` that has both a requester scatter
/// and gather span. Images still in flight (no gather) are skipped.
AttributionReport attribute_critical_paths(const MergedTrace& merged);

}  // namespace de::obs
