// Per-stream SLO window (DESIGN.md §observability, "Ops plane"): a small
// thread-safe ring of the most recent end-to-end image latencies, exposing
// rolling p50/p95/p99 plus a cumulative violation count against an
// optional latency target. One instance per client stream; the producer is
// the stream's delivery path (record once per delivered image), consumers
// are /streams scrapes.
//
// Unlike obs::Histogram (log2 buckets, unbounded history, ~2x percentile
// error) this keeps exact recent samples: an operator watching a live
// stream wants "p99 over the last few hundred images", not a since-boot
// aggregate that old traffic dominates. Both exist on purpose — the
// histogram feeds /metrics, the window feeds /streams.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace de::obs {

class SloWindow {
 public:
  /// `capacity` = samples retained for the rolling percentiles;
  /// `target_ms` <= 0 means "no SLO set" (violations stay 0).
  explicit SloWindow(std::size_t capacity = 256, double target_ms = 0);

  void set_target_ms(double target_ms);

  /// Records one delivered image's end-to-end latency. Thread-safe,
  /// allocation-free after construction.
  void record_ms(double latency_ms);

  struct Stats {
    std::int64_t count = 0;       ///< images recorded since construction
    std::int64_t window = 0;      ///< samples currently in the ring
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double target_ms = 0;         ///< <= 0: no SLO configured
    std::int64_t violations = 0;  ///< cumulative samples over target
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::int64_t count_ = 0;
  std::int64_t violations_ = 0;
  double target_ms_;
};

}  // namespace de::obs
