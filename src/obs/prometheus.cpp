#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

namespace de::obs {
namespace {

bool name_char_ok(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

std::string sanitize_name(std::string_view raw) {
  if (raw.empty()) return "_";
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out.push_back(name_char_ok(raw[i], i == 0) ? raw[i] : '_');
  }
  return out;
}

// Formats doubles the way the exposition format expects: integral values
// without a fractional part, everything else with enough digits to
// round-trip.
std::string format_value(double v) {
  // The exposition format spells these exactly so; ostringstream's
  // "nan"/"inf" would make the whole page unparseable to a conformant
  // scraper.
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -9.2e18 && v < 9.2e18) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// Renders `k=v,k2=v2` (no braces) into sanitized/escaped exposition label
// pairs. A segment with no '=' becomes value of the key "label".
std::string render_labels(std::string_view inner) {
  std::string out;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= inner.size()) {
    std::size_t comma = inner.find(',', pos);
    if (comma == std::string_view::npos) comma = inner.size();
    std::string_view item = inner.substr(pos, comma - pos);
    if (!item.empty()) {
      std::size_t eq = item.find('=');
      std::string_view key = eq == std::string_view::npos ? "label"
                                                          : item.substr(0, eq);
      std::string_view val =
          eq == std::string_view::npos ? item : item.substr(eq + 1);
      if (!first) out += ',';
      first = false;
      out += sanitize_name(key);
      out += "=\"";
      out += prom_escape_label_value(val);
      out += '"';
    }
    if (comma == inner.size()) break;
    pos = comma + 1;
  }
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

// Inserts `extra` (a rendered `k="v"` pair) into an already-rendered label
// block (`{...}` or empty).
std::string with_extra_label(const std::string& labels,
                             const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  std::string out = labels;
  out.insert(out.size() - 1, (labels.size() > 2 ? "," : "") + extra);
  return out;
}

}  // namespace

std::string prom_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

PromName prom_name(std::string_view name) {
  PromName out;
  std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    out.family = sanitize_name(name);
    return out;
  }
  out.family = sanitize_name(name.substr(0, brace));
  std::string_view rest = name.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  std::string labels = render_labels(rest);
  if (!labels.empty()) out.labels = "{" + labels + "}";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  // Group samples by sanitized family so each family gets exactly one
  // # TYPE header even when several labeled series share it. The snapshot
  // is name-ordered, so series order within a family is deterministic.
  struct Series {
    const MetricSample* sample;
    std::string labels;
  };
  std::map<std::string, std::pair<MetricKind, std::vector<Series>>> families;
  for (const MetricSample& s : snapshot.samples) {
    PromName pn = prom_name(s.name);
    auto [it, inserted] = families.try_emplace(
        pn.family, s.kind, std::vector<Series>{});
    it->second.second.push_back({&s, std::move(pn.labels)});
  }

  std::string out;
  for (const auto& [family, entry] : families) {
    const auto& [kind, series] = entry;
    out += "# TYPE " + family + " " + kind_name(kind) + "\n";
    for (const Series& sr : series) {
      const MetricSample& s = *sr.sample;
      switch (s.kind) {
        case MetricKind::kCounter:
          out += family + sr.labels + " " + std::to_string(s.count) + "\n";
          break;
        case MetricKind::kGauge:
          out += family + sr.labels + " " + format_value(s.value) + "\n";
          break;
        case MetricKind::kHistogram: {
          // Cumulative log2 buckets: obs::Histogram bucket k holds integer
          // samples in [2^(k-1), 2^k), so its inclusive upper bound is
          // 2^k - 1 (bucket 0 is exactly {0}). Emit up to the highest
          // non-empty bucket, then +Inf = _count.
          std::size_t top = 0;
          for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
            if (s.hist.counts[k] > 0) top = k;
          }
          std::int64_t cum = 0;
          for (std::size_t k = 0; k <= top; ++k) {
            cum += s.hist.counts[k];
            const std::uint64_t le =
                k == 0 ? 0 : (k >= 63 ? UINT64_MAX : (1ull << k) - 1);
            out += family + "_bucket" +
                   with_extra_label(sr.labels,
                                    "le=\"" + std::to_string(le) + "\"") +
                   " " + std::to_string(cum) + "\n";
          }
          out += family + "_bucket" +
                 with_extra_label(sr.labels, "le=\"+Inf\"") + " " +
                 std::to_string(s.hist.count) + "\n";
          out += family + "_sum" + sr.labels + " " +
                 std::to_string(s.hist.sum) + "\n";
          out += family + "_count" + sr.labels + " " +
                 std::to_string(s.hist.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace de::obs
