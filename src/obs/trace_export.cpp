#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace de::obs {

void ClockSyncBook::ingest(int node, std::int64_t reported_us,
                           std::int64_t received_us) {
  std::lock_guard lk(mu_);
  samples_.push_back({node, reported_us, received_us});
}

std::vector<std::int64_t> ClockSyncBook::offsets_us(int n_nodes) const {
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n_nodes),
                                    kNoOffset);
  std::lock_guard lk(mu_);
  for (const auto& s : samples_) {
    if (s.node < 0 || s.node >= n_nodes) continue;
    const std::int64_t diff = s.received_us - s.reported_us;
    auto& slot = offsets[static_cast<std::size_t>(s.node)];
    if (slot == kNoOffset || diff < slot) slot = diff;
  }
  return offsets;
}

std::vector<ClockSample> ClockSyncBook::samples() const {
  std::lock_guard lk(mu_);
  return samples_;
}

MergedTrace merge_capture(const TraceCapture& capture) {
  MergedTrace merged;
  const int n_nodes = capture.n_nodes();
  const int collector = capture.requester_node();

  // Per-node shift applied to process-steady timestamps. In-process all
  // nodes share one physical clock, so origin arithmetic alone would merge
  // exactly; the sync-book estimate is preferred where available because it
  // is what a genuinely distributed deployment would have. The estimated
  // offset maps node-local -> collector-local time; composing with the two
  // origins maps process time of node n back to process time as the
  // collector would stamp it.
  const std::vector<std::int64_t> est =
      capture.sync.offsets_us(n_nodes);
  merged.offsets_us.assign(static_cast<std::size_t>(std::max(n_nodes, 0)),
                           0);
  const std::int64_t collector_origin =
      collector >= 0 ? capture.node_origin_us[collector] : 0;
  for (int n = 0; n < n_nodes; ++n) {
    if (n == collector) continue;
    const std::int64_t origin = capture.node_origin_us[n];
    if (est[static_cast<std::size_t>(n)] != ClockSyncBook::kNoOffset) {
      // process_ts - origin[n] = node-local; + offset = collector-local;
      // + origin[collector] = collector's process timebase.
      merged.offsets_us[static_cast<std::size_t>(n)] =
          est[static_cast<std::size_t>(n)] - origin + collector_origin;
    } else {
      merged.offsets_us[static_cast<std::size_t>(n)] = 0;  // shared clock
    }
  }

  merged.dropped = capture.dump.total_dropped();
  for (const auto& thread : capture.dump.threads) {
    const int ti = static_cast<int>(merged.threads.size());
    merged.threads.push_back({thread.name, thread.node});
    const std::int64_t shift =
        (thread.node >= 0 && thread.node < n_nodes)
            ? merged.offsets_us[static_cast<std::size_t>(thread.node)]
            : 0;
    for (TraceEvent ev : thread.events) {
      ev.ts_us += shift;
      merged.events.push_back({ev, ti});
    }
  }
  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.event.ts_us < b.event.ts_us;
                   });
  return merged;
}

namespace {

/// JSON-escapes into `out` (thread names are ASCII role strings, but be
/// safe about quotes/backslashes/control bytes anyway).
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const MergedTrace& merged) {
  // Chrome trace-event "JSON object format": traceEvents array plus
  // metadata events naming processes (nodes) and threads. pid = node id
  // (+1 so node -1 / unbound maps to pid 0), tid = thread index.
  os << "{\"traceEvents\":[\n";
  std::string line;
  bool first = true;
  auto emit = [&](const std::string& ev_json) {
    if (!first) os << ",\n";
    first = false;
    os << ev_json;
  };

  // Metadata: process names once per distinct node, thread names per track.
  std::vector<int> nodes_seen;
  for (std::size_t ti = 0; ti < merged.threads.size(); ++ti) {
    const auto& t = merged.threads[ti];
    const int pid = t.node + 1;
    if (std::find(nodes_seen.begin(), nodes_seen.end(), t.node) ==
        nodes_seen.end()) {
      nodes_seen.push_back(t.node);
      line.clear();
      line += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
      line += std::to_string(pid);
      line += ",\"tid\":0,\"args\":{\"name\":\"";
      line += t.node < 0 ? "unbound" : "node-" + std::to_string(t.node);
      line += "\"}}";
      emit(line);
    }
    line.clear();
    line += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    line += std::to_string(pid);
    line += ",\"tid\":";
    line += std::to_string(ti);
    line += ",\"args\":{\"name\":\"";
    append_escaped(line, t.name.empty() ? "thread-" + std::to_string(ti)
                                        : t.name);
    line += "\"}}";
    emit(line);
  }

  char buf[256];
  for (const auto& me : merged.events) {
    const TraceEvent& ev = me.event;
    const auto& t = merged.threads[static_cast<std::size_t>(me.thread_index)];
    const int pid = t.node + 1;
    const char* name = cat_name(static_cast<Cat>(ev.cat));
    line.clear();
    if (ev.dur_us >= 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%lld,\"dur\":%d",
                    name, name, pid, me.thread_index,
                    static_cast<long long>(ev.ts_us), ev.dur_us);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"cat\":"
                    "\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%lld",
                    name, name, pid, me.thread_index,
                    static_cast<long long>(ev.ts_us));
    }
    line += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"image\":%d,\"volume\":%d,\"epoch\":%d,"
                  "\"stream\":%d,\"arg\":%lld}}",
                  ev.seq, ev.volume, ev.epoch, ev.stream,
                  static_cast<long long>(ev.arg));
    line += buf;
    emit(line);
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << merged.dropped << "}}\n";
}

bool write_chrome_trace(const std::string& path, const MergedTrace& merged) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, merged);
  return os.good();
}

MergedTrace trim_to_window(MergedTrace merged, std::int64_t window_us) {
  if (window_us <= 0 || merged.events.empty()) return merged;
  std::int64_t latest = std::numeric_limits<std::int64_t>::min();
  for (const auto& me : merged.events) {
    const std::int64_t end =
        me.event.ts_us + (me.event.dur_us > 0 ? me.event.dur_us : 0);
    latest = std::max(latest, end);
  }
  const std::int64_t cutoff = latest - window_us;
  std::erase_if(merged.events, [cutoff](const MergedEvent& me) {
    const std::int64_t end =
        me.event.ts_us + (me.event.dur_us > 0 ? me.event.dur_us : 0);
    return end < cutoff;
  });
  return merged;
}

std::vector<CategoryTotal> span_totals_by_node(const MergedTrace& merged) {
  // Dense (node+1) x category accumulation; nodes are tiny ints.
  int max_node = -1;
  for (const auto& t : merged.threads) max_node = std::max(max_node, t.node);
  const std::size_t n_cats = static_cast<std::size_t>(Cat::kCount);
  const std::size_t rows = static_cast<std::size_t>(max_node + 2);
  std::vector<std::int64_t> total(rows * n_cats, 0);
  std::vector<std::int64_t> spans(rows * n_cats, 0);
  for (const auto& me : merged.events) {
    if (me.event.dur_us < 0) continue;
    const auto& t = merged.threads[static_cast<std::size_t>(me.thread_index)];
    const std::size_t row = static_cast<std::size_t>(t.node + 1);
    const std::size_t idx = row * n_cats + me.event.cat;
    total[idx] += me.event.dur_us;
    spans[idx] += 1;
  }
  std::vector<CategoryTotal> out;
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t c = 0; c < n_cats; ++c) {
      const std::size_t idx = row * n_cats + c;
      if (spans[idx] == 0) continue;
      out.push_back({static_cast<int>(row) - 1, static_cast<Cat>(c),
                     total[idx], spans[idx]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CategoryTotal& a, const CategoryTotal& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.total_us > b.total_us;
            });
  return out;
}

}  // namespace de::obs
