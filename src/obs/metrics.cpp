#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "common/require.hpp"

namespace de::obs {

std::size_t Histogram::bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v)));
}

std::pair<std::int64_t, std::int64_t> Histogram::bucket_range(std::size_t k) {
  if (k == 0) return {0, 1};
  const std::int64_t lo = std::int64_t{1} << (k - 1);
  // Bucket 63 is open-ended; clamp its hi to int64 max.
  const std::int64_t hi =
      k >= 63 ? std::numeric_limits<std::int64_t>::max()
              : (std::int64_t{1} << k);
  return {lo, hi};
}

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    snap.counts[k] = buckets_[k].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::percentile(double p) const {
  if (count <= 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample, 1-based: p50 of 4 samples is sample 2.
  const double rank = p * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    if (counts[k] == 0) continue;
    const std::int64_t before = cumulative;
    cumulative += counts[k];
    if (static_cast<double>(cumulative) < rank) continue;
    const auto [lo, hi] = Histogram::bucket_range(k);
    if (k == 0) return 0;  // the zero bucket is exact
    // Linear interpolation by the fraction of the bucket's samples below
    // the rank: samples are assumed uniform across [lo, hi).
    const double frac =
        counts[k] > 0
            ? (rank - static_cast<double>(before)) /
                  static_cast<double>(counts[k])
            : 0.0;
    return static_cast<double>(lo) +
           frac * static_cast<double>(hi - lo);
  }
  return 0;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto* s = find(name);
  return s != nullptr ? s->count : 0;
}

std::vector<std::string> MetricsSnapshot::names() const {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.name);
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  char buf[160];
  bool first = true;
  for (const auto& s : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "\n  \"%s\": %lld", s.name.c_str(),
                      static_cast<long long>(s.count));
        out += buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "\n  \"%s\": %.6g", s.name.c_str(),
                      s.value);
        out += buf;
        break;
      case MetricKind::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "\n  \"%s\": {\"count\": %lld, \"sum\": %lld, \"mean\": %.3f, "
            "\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}",
            s.name.c_str(), static_cast<long long>(s.hist.count),
            static_cast<long long>(s.hist.sum), s.hist.mean(),
            s.hist.percentile(0.50), s.hist.percentile(0.95),
            s.hist.percentile(0.99));
        out += buf;
        break;
    }
  }
  out += "\n}";
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  std::lock_guard lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{kind, nullptr, nullptr,
                                                   nullptr}).first;
    switch (kind) {
      case MetricKind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        it->second.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  DE_REQUIRE(it->second.kind == kind,
             "metric '" + std::string(name) +
                 "' already registered with a different kind");
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry(name, MetricKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: name-ordered
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.count = e.counter->value();
        s.value = static_cast<double>(s.count);
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.hist = e.histogram->snapshot();
        s.count = s.hist.count;
        s.value = s.hist.mean();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

}  // namespace de::obs
