// Trace export + cluster merge (DESIGN.md §observability).
//
// Each node of a cluster records trace events in its *own* steady-clock
// timebase (node-local micros = process micros - the node's clock origin;
// on a real deployment these are genuinely independent clocks). To see one
// image flow requester -> provider -> requester on a single timeline, the
// per-node traces must be aligned: every kTelemetry frame carries the
// sender's node-local steady clock at publish (wire v4), the receiver
// stamps its own local clock at ingest, and the pair bounds the offset
// between the two clocks to within the one-way delivery delay. The merge
// takes, per node, the *minimum* observed (receive - report) difference —
// the sample with the least queuing — as the offset estimate, exactly the
// one-way half of NTP's clock filter.
//
// The merged timeline is serialized as Chrome trace-event JSON ("Trace
// Event Format"), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing: one process per cluster node, one track per runtime
// thread (named via obs::bind_thread), span events ("ph":"X") with the
// (image, volume, epoch) correlation ids as args.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace de::obs {

/// One telemetry-derived clock observation: node `node`'s local clock read
/// `reported_us` was received when the local (merging) node's clock read
/// `received_us`.
struct ClockSample {
  int node = -1;
  std::int64_t reported_us = 0;
  std::int64_t received_us = 0;
};

/// Accumulates ClockSamples per node and estimates, for each node, the
/// offset that maps its local clock into the collector's: collector_time ~
/// node_time + offset(node). Thread-safe ingest (the requester's serve loop
/// and a controller may both feed it).
class ClockSyncBook {
 public:
  void ingest(int node, std::int64_t reported_us, std::int64_t received_us);

  /// Minimum observed (received - reported) per node — the estimate with
  /// the least delivery-delay bias. Nodes never heard from are absent.
  /// Node ids index the returned vector; missing entries hold `kNoOffset`.
  static constexpr std::int64_t kNoOffset =
      std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> offsets_us(int n_nodes) const;

  std::vector<ClockSample> samples() const;

 private:
  mutable std::mutex mu_;
  std::vector<ClockSample> samples_;
};

/// A complete traced run: the recorder dump plus everything needed to merge
/// node timebases — per-node clock origins (process-steady micros at node
/// creation; node i's local time = process time - origin[i]) and the
/// telemetry-derived sync book. Nodes are 0..n_devices-1 providers plus the
/// requester at index n_devices, matching the fabric layout.
struct TraceCapture {
  TraceDump dump;
  std::vector<std::int64_t> node_origin_us;
  ClockSyncBook sync;

  int n_nodes() const { return static_cast<int>(node_origin_us.size()); }
  int requester_node() const { return n_nodes() - 1; }
};

/// One event on the merged timeline: the event plus its resolved thread
/// identity, with ts_us rebased into the collector node's timebase.
struct MergedEvent {
  TraceEvent event;
  int thread_index = 0;  ///< index into MergedTrace::threads
};

struct MergedThread {
  std::string name;
  int node = -1;
};

struct MergedTrace {
  std::vector<MergedThread> threads;
  std::vector<MergedEvent> events;   ///< sorted by rebased ts_us
  std::vector<std::int64_t> offsets_us;  ///< applied per node (0 = collector)
  std::uint64_t dropped = 0;         ///< ring-wrapped events not present
};

/// Rebases every thread's events into the collector's timebase and sorts
/// them into one timeline. Events of node n are shifted from process time
/// into node-local time via capture.node_origin_us[n], then back into the
/// collector's clock via the sync book's offset estimate for n (nodes the
/// book never saw fall back to origin arithmetic alone — exact in-process,
/// documented-approximate across machines). Events of unbound threads
/// (node -1) are kept unshifted on the collector clock.
MergedTrace merge_capture(const TraceCapture& capture);

/// Writes `merged` as Chrome trace-event JSON. Perfetto-loadable: nodes
/// appear as processes (pid = node id, requester last), threads as named
/// tracks, spans as "ph":"X" events with seq/volume/epoch/arg args, and
/// instants as "ph":"i".
void write_chrome_trace(std::ostream& os, const MergedTrace& merged);
/// Same, to a file; returns false when the file cannot be opened.
bool write_chrome_trace(const std::string& path, const MergedTrace& merged);

/// Flight-recorder window trim: keeps only events whose span *end* falls
/// within the trailing `window_us` of the merged timeline (measured back
/// from the latest event end). The rings are already bounded per thread;
/// this bounds a /trace/dump snapshot in *time* so "the last N seconds"
/// means the same thing on every track regardless of per-thread event
/// rates. window_us <= 0 keeps everything.
MergedTrace trim_to_window(MergedTrace merged, std::int64_t window_us);

/// Aggregate span time per (node, category) — the "where does the
/// wall-clock go" rollup the trace demo prints. Sorted widest-first within
/// each node.
struct CategoryTotal {
  int node = -1;
  Cat cat = Cat::kCount;
  std::int64_t total_us = 0;
  std::int64_t spans = 0;
};
std::vector<CategoryTotal> span_totals_by_node(const MergedTrace& merged);

}  // namespace de::obs
