#include "obs/attribution.hpp"

#include <algorithm>
#include <map>

namespace de::obs {
namespace {

struct Iv {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

std::int64_t total(const std::vector<Iv>& v) {
  std::int64_t t = 0;
  for (const Iv& iv : v) t += iv.hi - iv.lo;
  return t;
}

// Sorted union of possibly-overlapping intervals; drops empties.
std::vector<Iv> merge_union(std::vector<Iv> v) {
  std::erase_if(v, [](const Iv& iv) { return iv.hi <= iv.lo; });
  std::sort(v.begin(), v.end(),
            [](const Iv& a, const Iv& b) { return a.lo < b.lo; });
  std::vector<Iv> out;
  for (const Iv& iv : v) {
    if (!out.empty() && iv.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::vector<Iv> clip(const std::vector<Iv>& v, std::int64_t lo,
                     std::int64_t hi) {
  std::vector<Iv> out;
  for (const Iv& iv : v) {
    const Iv c{std::max(iv.lo, lo), std::min(iv.hi, hi)};
    if (c.hi > c.lo) out.push_back(c);
  }
  return out;
}

// `a` minus `b`; both must already be sorted unions.
std::vector<Iv> subtract(const std::vector<Iv>& a, const std::vector<Iv>& b) {
  std::vector<Iv> out;
  for (Iv iv : a) {
    for (const Iv& cut : b) {
      if (cut.hi <= iv.lo) continue;
      if (cut.lo >= iv.hi) break;
      if (cut.lo > iv.lo) out.push_back({iv.lo, cut.lo});
      iv.lo = std::max(iv.lo, cut.hi);
      if (iv.lo >= iv.hi) break;
    }
    if (iv.hi > iv.lo) out.push_back(iv);
  }
  return merge_union(out);
}

struct PerImage {
  // Requester bounds.
  bool have_scatter = false;
  bool have_gather = false;
  std::int64_t scatter_lo = 0, scatter_hi = 0;
  std::int64_t gather_hi = 0;
  // Provider work chains, keyed by node.
  std::map<int, std::vector<Iv>> compute;
  std::map<int, std::vector<Iv>> assemble;
};

}  // namespace

const DeviceStraggler* AttributionReport::device(int node) const {
  for (const DeviceStraggler& d : devices) {
    if (d.node == node) return &d;
  }
  return nullptr;
}

AttributionReport attribute_critical_paths(const MergedTrace& merged) {
  std::map<std::pair<int, int>, PerImage> images;  // (stream, seq)

  for (const MergedEvent& me : merged.events) {
    const TraceEvent& ev = me.event;
    if (ev.seq < 0 || ev.dur_us < 0) continue;  // spans with a seq only
    const auto cat = static_cast<Cat>(ev.cat);
    const std::int64_t lo = ev.ts_us;
    const std::int64_t hi = ev.ts_us + ev.dur_us;
    auto& img = images[{ev.stream, ev.seq}];
    switch (cat) {
      case Cat::kScatter:
        // A re-dispatched image scatters more than once; attribute from
        // the first attempt so recovery time stays visible in e2e.
        if (!img.have_scatter || lo < img.scatter_lo) {
          img.scatter_lo = lo;
          img.scatter_hi = hi;
          img.have_scatter = true;
        }
        break;
      case Cat::kGather:
        img.gather_hi = img.have_gather ? std::max(img.gather_hi, hi) : hi;
        img.have_gather = true;
        break;
      case Cat::kCompute:
      case Cat::kComputeBand:
        if (ev.node >= 0) img.compute[ev.node].push_back({lo, hi});
        break;
      case Cat::kAssemble:
        if (ev.node >= 0) img.assemble[ev.node].push_back({lo, hi});
        break;
      default:
        break;
    }
  }

  AttributionReport report;
  std::map<int, std::int64_t> critical_count;

  for (auto& [key, img] : images) {
    if (!img.have_scatter || !img.have_gather) continue;  // still in flight
    const std::int64_t t0 = img.scatter_lo;
    const std::int64_t t_end = img.gather_hi;
    if (t_end <= t0) continue;

    ImageBreakdown bd;
    bd.stream = key.first;
    bd.seq = key.second;
    bd.e2e_us = t_end - t0;

    // Critical device: the provider whose work chain ends last — the
    // gather cannot close before its rows arrive. Used for the straggler
    // score, not for the time partition below.
    std::int64_t chain_end = -1;
    std::vector<Iv> all_compute;
    std::vector<Iv> all_assemble;
    for (const auto& [node, ivs] : img.compute) {
      for (const Iv& iv : clip(ivs, t0, t_end)) {
        all_compute.push_back(iv);
        if (iv.hi > chain_end) {
          chain_end = iv.hi;
          bd.critical_node = node;
        }
      }
    }
    for (const auto& [node, ivs] : img.assemble) {
      for (const Iv& iv : clip(ivs, t0, t_end)) {
        all_assemble.push_back(iv);
        if (iv.hi > chain_end) {
          chain_end = iv.hi;
          bd.critical_node = node;
        }
      }
    }

    // Wall-clock partition of [t0, t_end] by priority: scatter, then time
    // at least one provider was computing this image, then input waits not
    // hidden by compute, then the tail between the last provider event and
    // the gather's close. Providers run in parallel, so per-node intervals
    // are unioned, not summed — the components decompose the image's
    // latency window, not total device-time.
    const std::vector<Iv> scatter =
        clip({{img.scatter_lo, img.scatter_hi}}, t0, t_end);
    bd.scatter_us = total(scatter);
    if (bd.critical_node >= 0) {
      const std::vector<Iv> comp = subtract(merge_union(all_compute), scatter);
      std::vector<Iv> halo = subtract(merge_union(all_assemble), scatter);
      halo = subtract(halo, comp);
      const std::vector<Iv> tail =
          subtract(clip({{chain_end, t_end}}, t0, t_end), scatter);
      bd.compute_us = total(comp);
      bd.halo_wait_us = total(halo);
      bd.gather_wait_us = total(tail);
    }
    bd.unattributed_us = bd.e2e_us - bd.scatter_us - bd.compute_us -
                         bd.halo_wait_us - bd.gather_wait_us;

    if (bd.critical_node >= 0) ++critical_count[bd.critical_node];
    report.images.push_back(bd);
  }

  report.images_attributed = static_cast<std::int64_t>(report.images.size());
  for (const auto& [node, n] : critical_count) {
    DeviceStraggler d;
    d.node = node;
    d.images_critical = n;
    d.score = report.images_attributed > 0
                  ? static_cast<double>(n) /
                        static_cast<double>(report.images_attributed)
                  : 0;
    report.devices.push_back(d);
  }
  return report;
}

}  // namespace de::obs
