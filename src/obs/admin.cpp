#include "obs/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <shared_mutex>

#include "common/require.hpp"

namespace de::obs {

namespace {

bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

void write_response(int fd, const HttpResponse& r) {
  std::string head = "HTTP/1.0 " + std::to_string(r.status) + " " +
                     reason_phrase(r.status) +
                     "\r\nContent-Type: " + r.content_type +
                     "\r\nContent-Length: " + std::to_string(r.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size())) {
    send_all(fd, r.body.data(), r.body.size());
  }
}

void set_recv_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// In-flight handler executions hold this shared; unroute()/close() take it
// exclusive, so returning from either means no thread is inside a dropped
// handler. Process-wide (not per-server) — admin traffic is rare and
// short, and it keeps the header free of <shared_mutex>.
std::shared_mutex& handler_mu() {
  static std::shared_mutex mu;
  return mu;
}

}  // namespace

std::optional<std::string_view> query_param(std::string_view query,
                                            std::string_view key) {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view item = query.substr(pos, amp - pos);
    if (item.size() > key.size() && item[key.size()] == '=' &&
        item.substr(0, key.size()) == key) {
      return item.substr(key.size() + 1);
    }
    if (amp == query.size()) break;
    pos = amp + 1;
  }
  return std::nullopt;
}

AdminServer::AdminServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DE_REQUIRE(listen_fd_ >= 0, "admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("admin: cannot bind loopback listener");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

AdminServer::~AdminServer() { close(); }

void AdminServer::route(const std::string& path, AdminHandler handler) {
  std::lock_guard lk(mu_);
  routes_[path] = std::move(handler);
}

void AdminServer::unroute(const std::string& path) {
  {
    std::lock_guard lk(mu_);
    routes_.erase(path);
  }
  // Barrier: wait out any connection thread still inside the old handler.
  std::unique_lock handlers(handler_mu());
}

void AdminServer::reap_finished_locked(std::vector<std::thread>& out) {
  for (const auto id : conn_done_) {
    for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
      if (it->get_id() == id) {
        out.push_back(std::move(*it));
        conn_threads_.erase(it);
        break;
      }
    }
  }
  conn_done_.clear();
}

void AdminServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    std::vector<std::thread> finished;
    if (fd < 0) {
      const int err = errno;
      {
        std::lock_guard lk(mu_);
        if (down_) return;  // listener shut down: the only clean exit
        reap_finished_locked(finished);
      }
      for (auto& t : finished) t.join();
      // Same contract as the TCP front door: a failed accept() must never
      // end the loop for the life of the server. Aborted handshakes are
      // routine; fd/buffer exhaustion is transient.
      if (err == EINTR || err == ECONNABORTED || err == EPROTO) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      return;  // genuinely fatal without shutdown
    }
    {
      std::lock_guard lk(mu_);
      if (down_) {
        ::close(fd);
        return;
      }
      reap_finished_locked(finished);
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
    for (auto& t : finished) t.join();
  }
}

void AdminServer::serve_connection(int fd) {
  // A stalled scraper holds one thread for at most this long.
  set_recv_timeout(fd, 2);

  std::string req;
  char buf[1024];
  bool complete = false;
  while (req.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF, timeout, or error
    }
    req.append(buf, static_cast<std::size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos ||
        req.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  if (complete) {
    // "GET /path?query HTTP/1.x" — method, one space, target.
    std::string_view line(req);
    line = line.substr(0, line.find_first_of("\r\n"));
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos) {
      write_response(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    } else if (line.substr(0, sp1) != "GET") {
      write_response(
          fd, {405, "text/plain; charset=utf-8", "GET only\n"});
    } else {
      std::string_view target =
          sp2 == std::string_view::npos
              ? line.substr(sp1 + 1)
              : line.substr(sp1 + 1, sp2 - sp1 - 1);
      std::string_view query;
      if (const std::size_t q = target.find('?');
          q != std::string_view::npos) {
        query = target.substr(q + 1);
        target = target.substr(0, q);
      }
      HttpResponse resp{404, "text/plain; charset=utf-8",
                        std::string(target) + " not found\n"};
      {
        // Shared-held across lookup AND invocation: if unroute() wins the
        // erase our lookup misses; if the lookup wins, unroute()'s
        // exclusive barrier blocks until the handler returns. Either way
        // no thread is inside a dropped handler once unroute() returns.
        std::shared_lock handlers(handler_mu());
        AdminHandler handler;
        {
          std::lock_guard lk(mu_);
          if (auto it = routes_.find(target); it != routes_.end()) {
            handler = it->second;
          }
        }
        if (handler) {
          try {
            resp = handler(query);
          } catch (const std::exception& e) {
            resp = {500, "text/plain; charset=utf-8",
                    std::string("handler error: ") + e.what() + "\n"};
          }
        }
      }
      write_response(fd, resp);
    }
  }

  // Deregister before closing so close() never touches a recycled fd, then
  // park this thread's id for the accept loop to reap the handle.
  std::lock_guard lk(mu_);
  std::erase(conn_fds_, fd);
  ::close(fd);
  conn_done_.push_back(std::this_thread::get_id());
}

void AdminServer::close() {
  std::vector<std::thread> conns;
  {
    std::lock_guard lk(mu_);
    if (down_) return;  // idempotent: a second call must not re-join
    down_ = true;
    routes_.clear();
    // Wake connection threads blocked in recv(); they close their own fd.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conns = std::move(conn_threads_);
    conn_done_.clear();
  }
  // Wake accept() with ::shutdown only; close the fd *after* the join so
  // the accept thread never reads a recycled fd number.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& t : conns) t.join();
  // Barrier for callers that tear down handler-captured state next.
  std::unique_lock handlers(handler_mu());
}

std::optional<HttpGetResult> http_get(std::uint16_t port,
                                      const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  set_recv_timeout(fd, 5);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (!send_all(fd, req.data(), req.size())) {
    ::close(fd);
    return std::nullopt;
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
  if (raw.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos) return std::nullopt;
  HttpGetResult out;
  out.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank == std::string::npos) return std::nullopt;
  out.body = raw.substr(blank + 4);
  return out;
}

}  // namespace de::obs
