#include "obs/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace de::obs {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kScatter: return "scatter";
    case Cat::kGather: return "gather";
    case Cat::kAssemble: return "assemble";
    case Cat::kCompute: return "compute";
    case Cat::kComputeBand: return "compute_band";
    case Cat::kHaloPost: return "halo_post";
    case Cat::kSenderWrite: return "sender_write";
    case Cat::kTxSyscall: return "tx_syscall";
    case Cat::kRxSyscall: return "rx_syscall";
    case Cat::kRtoFire: return "rto_fire";
    case Cat::kNackResend: return "nack_resend";
    case Cat::kRecvTimeout: return "recv_timeout";
    case Cat::kDupDrop: return "dup_drop";
    case Cat::kParkChunk: return "park_chunk";
    case Cat::kEpochRegister: return "epoch_register";
    case Cat::kEpochPush: return "epoch_push";
    case Cat::kImageRestart: return "image_restart";
    case Cat::kReplan: return "replan";
    case Cat::kSwapDecision: return "swap_decision";
    case Cat::kDriftSample: return "drift_sample";
    case Cat::kPoolTask: return "pool_task";
    case Cat::kPacedSend: return "paced_send";
    case Cat::kTelemetryPub: return "telemetry_pub";
    case Cat::kFrameAlloc: return "frame_alloc";
    case Cat::kHeartbeatPub: return "heartbeat_pub";
    case Cat::kLeaseExpire: return "lease_expire";
    case Cat::kMembershipSwap: return "membership_swap";
    case Cat::kImageCancel: return "image_cancel";
    case Cat::kJoinAdopt: return "join_adopt";
    case Cat::kRetxCancel: return "retx_cancel";
    case Cat::kLaneEvictCat: return "lane_evict";
    case Cat::kCount: break;
  }
  return "unknown";
}

std::int64_t now_us() {
  // One fixed origin per process: initialized on first use, before any
  // recording thread exists (TraceRecorder::instance() touches it too).
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

namespace {

/// Per-thread binding, set by bind_thread and copied into the ring a thread
/// acquires. Lives in the thread, not the recorder, so binding works
/// whether tracing is enabled before or after the thread starts.
struct ThreadBinding {
  std::string name;
  int node = -1;
};

thread_local ThreadBinding t_binding;

constexpr std::size_t kWords = sizeof(TraceEvent) / 8;

}  // namespace

/// One thread's ring. Single writer (the owning thread), any number of
/// concurrent snapshot readers. Every slot is a miniature seqlock: the
/// stamp holds (event index + 1), is zeroed before the words are rewritten
/// and republished after, so a reader either copies a whole event or
/// rejects the slot. All accesses are atomic (TSan-clean); acquire/release
/// on x86 compiles to plain loads/stores.
struct TraceRecorder::Ring {
  explicit Ring(std::size_t capacity, ThreadBinding binding)
      : cap(capacity), slots(capacity), bind(std::move(binding)) {}

  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  ///< event index + 1; 0 = invalid
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  const std::size_t cap;
  std::vector<Slot> slots;
  ThreadBinding bind;
  std::atomic<std::uint64_t> head{0};  ///< events ever written

  void write(const TraceEvent& ev) {
    const std::uint64_t idx = head.load(std::memory_order_relaxed);
    Slot& slot = slots[idx % cap];
    std::uint64_t w[kWords];
    std::memcpy(w, &ev, sizeof(ev));
    slot.stamp.store(0, std::memory_order_release);
    for (std::size_t k = 0; k < kWords; ++k) {
      slot.words[k].store(w[k], std::memory_order_release);
    }
    slot.stamp.store(idx + 1, std::memory_order_release);
    head.store(idx + 1, std::memory_order_release);
  }

  /// Copies the event at logical index `idx` if its slot still holds it.
  bool read(std::uint64_t idx, TraceEvent& out) const {
    const Slot& slot = slots[idx % cap];
    if (slot.stamp.load(std::memory_order_acquire) != idx + 1) return false;
    std::uint64_t w[kWords];
    for (std::size_t k = 0; k < kWords; ++k) {
      w[k] = slot.words[k].load(std::memory_order_acquire);
    }
    // Re-check: the writer zeroes the stamp before rewriting the words, so
    // an unchanged stamp proves the copy above was not torn by a lap.
    if (slot.stamp.load(std::memory_order_acquire) != idx + 1) return false;
    std::memcpy(&out, w, sizeof(out));
    return true;
  }
};

/// Thread-local handle: which session's ring this thread holds. Kept as a
/// shared_ptr so a ring outlives its thread until the recorder drops it.
struct TraceRecorder::ThreadSlot {
  std::shared_ptr<Ring> ring;
  std::uint64_t session = 0;
};

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  (void)now_us();  // pin the process time origin before any recording
  return recorder;
}

void TraceRecorder::enable(const TraceConfig& config) {
  std::lock_guard lk(mu_);
  config_ = config;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  rings_.clear();
  session_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_release);
}

TraceRecorder::Ring* TraceRecorder::ring_for_this_thread() {
  thread_local ThreadSlot slot;
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (slot.ring == nullptr || slot.session != session) {
    auto ring = [&] {
      std::lock_guard lk(mu_);
      rings_.push_back(
          std::make_shared<Ring>(config_.ring_capacity, t_binding));
      return rings_.back();
    }();
    slot.ring = std::move(ring);
    slot.session = session;
  }
  return slot.ring.get();
}

void TraceRecorder::record(TraceEvent ev) {
  if (!enabled()) return;
  Ring* ring = ring_for_this_thread();
  ev.node = static_cast<std::int16_t>(ring->bind.node);
  ring->write(ev);
}

TraceDump TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lk(mu_);
    rings = rings_;
  }
  TraceDump dump;
  dump.threads.reserve(rings.size());
  for (const auto& ring : rings) {
    ThreadTrace t;
    t.name = ring->bind.name;
    t.node = ring->bind.node;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t first = head > ring->cap ? head - ring->cap : 0;
    t.dropped = first;
    t.events.reserve(static_cast<std::size_t>(head - first));
    for (std::uint64_t idx = first; idx < head; ++idx) {
      TraceEvent ev;
      if (ring->read(idx, ev)) {
        t.events.push_back(ev);
      } else {
        ++t.dropped;  // overwritten (or mid-rewrite) during this snapshot
      }
    }
    dump.threads.push_back(std::move(t));
  }
  return dump;
}

std::uint64_t TraceDump::total_events() const {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.events.size();
  return n;
}

std::uint64_t TraceDump::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : threads) n += t.dropped;
  return n;
}

void bind_thread(const std::string& name, int node) {
  t_binding.name = name;
  t_binding.node = node;
#if defined(__linux__)
  // The kernel caps names at 16 bytes including the terminator.
  char os_name[16];
  std::snprintf(os_name, sizeof(os_name), "%s", name.c_str());
  pthread_setname_np(pthread_self(), os_name);
#endif
}

}  // namespace de::obs
