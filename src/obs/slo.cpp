#include "obs/slo.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace de::obs {

SloWindow::SloWindow(std::size_t capacity, double target_ms)
    : capacity_(capacity), target_ms_(target_ms) {
  DE_REQUIRE(capacity > 0, "slo window capacity must be positive");
  ring_.reserve(capacity_);
}

void SloWindow::set_target_ms(double target_ms) {
  std::lock_guard lk(mu_);
  target_ms_ = target_ms;
}

void SloWindow::record_ms(double latency_ms) {
  std::lock_guard lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(latency_ms);
  } else {
    ring_[next_] = latency_ms;
  }
  next_ = (next_ + 1) % capacity_;
  ++count_;
  if (target_ms_ > 0 && latency_ms > target_ms_) ++violations_;
}

namespace {
// Nearest-rank percentile over a sorted window.
double pct(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}
}  // namespace

SloWindow::Stats SloWindow::stats() const {
  std::vector<double> window;
  Stats out;
  {
    std::lock_guard lk(mu_);
    window = ring_;
    out.count = count_;
    out.violations = violations_;
    out.target_ms = target_ms_;
  }
  out.window = static_cast<std::int64_t>(window.size());
  std::sort(window.begin(), window.end());
  out.p50_ms = pct(window, 0.50);
  out.p95_ms = pct(window, 0.95);
  out.p99_ms = pct(window, 0.99);
  return out;
}

}  // namespace de::obs
