// MoDNN (Mao et al., DATE 2017): local distributed mobile computing — each
// layer split independently, shares proportional to a single per-device
// "computing capability" value (pure slope, no intercept, no network term).
#include "baselines/baselines.hpp"
#include "baselines/linear_model.hpp"

namespace de::baselines {

core::DistributionStrategy MoDnnPlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  const int n = ctx.num_devices();

  core::DistributionStrategy strategy;
  strategy.boundaries.push_back(0);
  for (int l = 0; l < model.num_layers(); ++l) {
    strategy.boundaries.push_back(l + 1);
    const auto& layer = model.layer(l);
    std::vector<double> capability(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto cost = linearize(*ctx.latency[static_cast<std::size_t>(i)], layer);
      capability[static_cast<std::size_t>(i)] = 1.0 / cost.slope_ms_per_row;
    }
    strategy.splits.push_back(core::proportional_split(layer.out_h(), capability));
  }
  return strategy;
}

}  // namespace de::baselines
