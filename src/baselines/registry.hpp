// Planner registry: construction by paper name, and the standard
// eight-method lineup of the evaluation figures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/distredge.hpp"

namespace de::baselines {

/// "CoEdge", "MoDNN", "MeDNN", "DeepThings", "DeeperThings", "AOFL",
/// "Offload", or "DistrEdge" (with the given config). Throws on unknown.
std::unique_ptr<core::Planner> make_planner(
    const std::string& name,
    const core::DistrEdgeConfig& distredge_config = core::DistrEdgeConfig::fast());

/// The figure lineup, in the paper's legend order.
std::vector<std::string> figure_planner_names();

}  // namespace de::baselines
