// The seven baseline planners of the paper's evaluation (§V-B), all
// producing DistributionStrategy through the common Planner interface:
//
//   CoEdge       — layer-by-layer split; linear device + network models
//   MoDNN        — layer-by-layer split; linear device model (slope only)
//   MeDNN        — layer-by-layer split; linear device model with intercepts
//   DeepThings   — the whole conv chain as ONE fused volume; equal split
//   DeeperThings — multiple fused volumes (at spatial-reduction layers);
//                  equal split
//   AOFL         — brute-force fused-partition search scored by a linear
//                  predictor; linear-ratio splits with network terms
//   Offload      — everything on the single best device
#pragma once

#include <memory>

#include "core/planner.hpp"

namespace de::baselines {

class CoEdgePlanner final : public core::Planner {
 public:
  std::string name() const override { return "CoEdge"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;
};

class MoDnnPlanner final : public core::Planner {
 public:
  std::string name() const override { return "MoDNN"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;
};

class MeDnnPlanner final : public core::Planner {
 public:
  std::string name() const override { return "MeDNN"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;
};

class DeepThingsPlanner final : public core::Planner {
 public:
  std::string name() const override { return "DeepThings"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;
};

class DeeperThingsPlanner final : public core::Planner {
 public:
  std::string name() const override { return "DeeperThings"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;
};

class AoflPlanner final : public core::Planner {
 public:
  /// `max_volumes` bounds the brute-force partition search (cost grows
  /// combinatorially — the effect the paper's §V-F timing compares against).
  explicit AoflPlanner(int max_volumes = 4) : max_volumes_(max_volumes) {}
  std::string name() const override { return "AOFL"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;

 private:
  int max_volumes_;
};

class OffloadPlanner final : public core::Planner {
 public:
  std::string name() const override { return "Offload"; }
  core::DistributionStrategy plan(const core::PlanContext& ctx) override;
};

/// Boundaries after every layer that reduces spatial height (the natural
/// fused-block partition DeeperThings uses). Exposed for tests.
std::vector<int> reduction_boundaries(const cnn::CnnModel& model);

}  // namespace de::baselines
