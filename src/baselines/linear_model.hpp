// Shared machinery for the linear-model baselines.
//
// CoEdge / MoDNN / MeDNN / AOFL all assume computing latency is (affine)
// linear in the split height and transmission latency is proportional to
// bytes / throughput (paper §II-B, the assumption DistrEdge drops). This
// header provides: a two-point linearisation of a (truthfully nonlinear)
// LatencyModel, the per-row transmission cost of a layer over a link, and
// the water-filling allocator that balances max_i(a_i + s_i * h_i) subject
// to sum h_i = H, h_i >= 0.
#pragma once

#include <vector>

#include "cnn/layer.hpp"
#include "device/latency_model.hpp"
#include "net/network.hpp"

namespace de::baselines {

struct LinearLayerCost {
  double intercept_ms = 0.0;
  double slope_ms_per_row = 0.0;
};

/// Two-point (H, H/2) linearisation of a device's latency curve for a layer.
LinearLayerCost linearize(const device::LatencyModel& model,
                          const cnn::LayerConfig& layer);

/// Milliseconds to move one *input* row of `layer` over `link` at time `t`
/// (wire + per-byte I/O; the per-transfer fixed cost is charged to the
/// intercept by callers that model it).
double tx_ms_per_input_row(const cnn::LayerConfig& layer, const net::Link& link,
                           Seconds t);

/// Integer shares h (sum == height, h_i >= 0) minimising
/// max_{i: h_i > 0} (a[i] + s[i] * h_i). Slow/expensive devices (large a or
/// s) can end up with zero rows. All s[i] must be > 0.
std::vector<int> waterfill_shares(int height, const std::vector<double>& a,
                                  const std::vector<double>& s);

}  // namespace de::baselines
