#include "baselines/linear_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace de::baselines {

LinearLayerCost linearize(const device::LatencyModel& model,
                          const cnn::LayerConfig& layer) {
  const int h = layer.out_h();
  const int h_half = std::max(1, h / 2);
  const double t_full = model.layer_ms(layer, h);
  LinearLayerCost cost;
  if (h_half == h) {
    cost.slope_ms_per_row = t_full / h;
    cost.intercept_ms = 0.0;
    return cost;
  }
  const double t_half = model.layer_ms(layer, h_half);
  cost.slope_ms_per_row = (t_full - t_half) / static_cast<double>(h - h_half);
  cost.slope_ms_per_row = std::max(cost.slope_ms_per_row, 1e-9);
  cost.intercept_ms = std::max(t_full - cost.slope_ms_per_row * h, 0.0);
  return cost;
}

double tx_ms_per_input_row(const cnn::LayerConfig& layer, const net::Link& link,
                           Seconds t) {
  const Bytes row_bytes = layer.input_bytes_for_rows(1);
  return wire_ms(row_bytes, link.rate_at(t)) +
         link.io_per_mb_ms * (static_cast<double>(row_bytes) / 1e6);
}

std::vector<int> waterfill_shares(int height, const std::vector<double>& a,
                                  const std::vector<double>& s) {
  DE_REQUIRE(height >= 1, "height >= 1");
  DE_REQUIRE(a.size() == s.size() && !a.empty(), "cost vectors mismatched");
  const std::size_t n = a.size();
  for (double v : s) DE_REQUIRE(v > 0.0, "waterfill slope must be positive");

  auto total_at = [&](double t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += std::max(0.0, (t - a[i]) / s[i]);
    return sum;
  };
  double lo = *std::min_element(a.begin(), a.end());
  double hi = *std::max_element(a.begin(), a.end()) +
              height * *std::max_element(s.begin(), s.end());
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total_at(mid) < static_cast<double>(height)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t = hi;

  // Largest-remainder rounding of the real-valued shares.
  std::vector<double> exact(n);
  for (std::size_t i = 0; i < n; ++i) exact[i] = std::max(0.0, (t - a[i]) / s[i]);
  const double norm = std::max(total_at(t), 1e-12);
  std::vector<int> shares(n, 0);
  std::vector<std::pair<double, std::size_t>> rem;
  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double scaled = exact[i] * height / norm;
    shares[i] = static_cast<int>(scaled);
    assigned += shares[i];
    rem.emplace_back(scaled - shares[i], i);
  }
  std::stable_sort(rem.begin(), rem.end(),
                   [](const auto& x, const auto& y) { return x.first > y.first; });
  for (int k = 0; k < height - assigned; ++k) {
    shares[rem[static_cast<std::size_t>(k) % n].second]++;
  }
  return shares;
}

}  // namespace de::baselines
