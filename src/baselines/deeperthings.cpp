// DeeperThings (Stahl et al., IJPP 2021): multiple fused blocks, each split
// equally. Blocks end at spatial-reduction layers (pool / strided conv),
// the natural fusion boundaries of the original system.
#include "baselines/baselines.hpp"

namespace de::baselines {

std::vector<int> reduction_boundaries(const cnn::CnnModel& model) {
  std::vector<int> boundaries = {0};
  for (int l = 0; l < model.num_layers(); ++l) {
    const auto& layer = model.layer(l);
    const bool reduces = layer.out_h() < layer.in_h;
    if (reduces && l + 1 < model.num_layers()) boundaries.push_back(l + 1);
  }
  boundaries.push_back(model.num_layers());
  return boundaries;
}

core::DistributionStrategy DeeperThingsPlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  core::DistributionStrategy strategy;
  strategy.boundaries = reduction_boundaries(model);
  const auto volumes =
      cnn::volumes_from_boundaries(strategy.boundaries, model.num_layers());
  for (const auto& v : volumes) {
    strategy.splits.push_back(
        core::equal_split(cnn::volume_out_height(model, v), ctx.num_devices()));
  }
  return strategy;
}

}  // namespace de::baselines
