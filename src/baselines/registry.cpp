#include "baselines/registry.hpp"

#include "baselines/baselines.hpp"
#include "common/require.hpp"

namespace de::baselines {

std::unique_ptr<core::Planner> make_planner(const std::string& name,
                                            const core::DistrEdgeConfig& config) {
  if (name == "CoEdge") return std::make_unique<CoEdgePlanner>();
  if (name == "MoDNN") return std::make_unique<MoDnnPlanner>();
  if (name == "MeDNN") return std::make_unique<MeDnnPlanner>();
  if (name == "DeepThings") return std::make_unique<DeepThingsPlanner>();
  if (name == "DeeperThings") return std::make_unique<DeeperThingsPlanner>();
  if (name == "AOFL") return std::make_unique<AoflPlanner>();
  if (name == "Offload") return std::make_unique<OffloadPlanner>();
  if (name == "DistrEdge") return std::make_unique<core::DistrEdgePlanner>(config);
  throw Error("unknown planner: " + name);
}

std::vector<std::string> figure_planner_names() {
  return {"CoEdge",       "MoDNN", "MeDNN",     "DeepThings",
          "DeeperThings", "AOFL",  "DistrEdge", "Offload"};
}

}  // namespace de::baselines
