// MeDNN (Mao et al., ICCAD 2017): MoDNN with "enhanced partition" — the
// affine per-device cost (intercept + slope) is balanced exactly via
// water-filling, so fixed per-layer overheads shift work toward devices
// that amortise them better. Still layer-by-layer and still linear.
#include "baselines/baselines.hpp"
#include "baselines/linear_model.hpp"

namespace de::baselines {

core::DistributionStrategy MeDnnPlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  const int n = ctx.num_devices();

  core::DistributionStrategy strategy;
  strategy.boundaries.push_back(0);
  for (int l = 0; l < model.num_layers(); ++l) {
    strategy.boundaries.push_back(l + 1);
    const auto& layer = model.layer(l);
    std::vector<double> a(static_cast<std::size_t>(n));
    std::vector<double> s(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto cost = linearize(*ctx.latency[static_cast<std::size_t>(i)], layer);
      a[static_cast<std::size_t>(i)] = cost.intercept_ms;
      s[static_cast<std::size_t>(i)] = cost.slope_ms_per_row;
    }
    const auto shares = waterfill_shares(layer.out_h(), a, s);
    core::SplitDecision d;
    d.cuts.resize(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
      d.cuts[static_cast<std::size_t>(i) + 1] =
          d.cuts[static_cast<std::size_t>(i)] + shares[static_cast<std::size_t>(i)];
    }
    strategy.splits.push_back(std::move(d));
  }
  return strategy;
}

}  // namespace de::baselines
