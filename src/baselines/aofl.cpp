// AOFL (Zhou et al., SEC 2019): adaptive parallel execution with fused
// layer-volumes. Partition locations come from a brute-force search over all
// partitions with at most `max_volumes_` volumes, each candidate scored by a
// *linear* latency predictor (per-device affine compute cost + proportional
// transmission cost); splits are linear-ratio water-filling per volume.
//
// The exhaustive candidate enumeration is exactly why the paper's §V-F
// measures ~10 min strategy updates for AOFL vs seconds for LC-PSS.
#include <functional>
#include <limits>

#include "baselines/baselines.hpp"
#include "baselines/linear_model.hpp"
#include "common/require.hpp"

namespace de::baselines {

namespace {

struct VolumeLinearCost {
  std::vector<double> a;  ///< per-device intercepts
  std::vector<double> s;  ///< per-device slope per last-layer output row
};

/// Affine per-device cost of a volume [first, last): compute slopes of each
/// layer rescaled to rows of the *last* layer, plus the per-row cost of
/// shipping the volume's input over the device's link.
VolumeLinearCost volume_cost(const core::PlanContext& ctx,
                             const std::vector<std::vector<LinearLayerCost>>& lin,
                             int first, int last) {
  const auto& model = *ctx.model;
  const int n = ctx.num_devices();
  const double h_last = model.layer(last - 1).out_h();

  VolumeLinearCost cost;
  cost.a.assign(static_cast<std::size_t>(n), 0.0);
  cost.s.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double a = ctx.network->link(i).io_fixed_ms;
    double s = 0.0;
    for (int l = first; l < last; ++l) {
      const auto& c = lin[static_cast<std::size_t>(i)][static_cast<std::size_t>(l)];
      a += c.intercept_ms;
      // One last-layer row corresponds to H_l / h_last rows of layer l.
      s += c.slope_ms_per_row * (model.layer(l).out_h() / h_last);
    }
    const auto& first_layer = model.layer(first);
    const double in_rows_per_out_row = first_layer.in_h / h_last;
    s += tx_ms_per_input_row(first_layer, ctx.network->link(i), ctx.plan_time_s) *
         in_rows_per_out_row;
    cost.a[static_cast<std::size_t>(i)] = a;
    cost.s[static_cast<std::size_t>(i)] = s;
  }
  return cost;
}

/// Predicted latency of one volume under water-filled shares = the balanced
/// water level (max over active devices of a_i + s_i h_i).
double predict_volume_ms(const VolumeLinearCost& cost, int height,
                         std::vector<int>* shares_out) {
  const auto shares = waterfill_shares(height, cost.a, cost.s);
  double worst = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (shares[i] == 0) continue;
    worst = std::max(worst, cost.a[i] + cost.s[i] * shares[i]);
  }
  if (shares_out != nullptr) *shares_out = shares;
  return worst;
}

/// Enumerates all boundary vectors {0 < b_1 < ... < b_{k-1} < n} with at
/// most max_volumes volumes, invoking fn on each.
void enumerate_partitions(int n_layers, int max_volumes,
                          const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> boundaries{0, n_layers};
  fn(boundaries);
  // DFS over interior boundary insertions (increasing positions).
  std::vector<int> interior;
  std::function<void(int)> dfs = [&](int next_min) {
    if (static_cast<int>(interior.size()) + 1 >= max_volumes) return;
    for (int b = next_min; b < n_layers; ++b) {
      interior.push_back(b);
      std::vector<int> full{0};
      full.insert(full.end(), interior.begin(), interior.end());
      full.push_back(n_layers);
      fn(full);
      dfs(b + 1);
      interior.pop_back();
    }
  };
  dfs(1);
}

}  // namespace

core::DistributionStrategy AoflPlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  const int n = ctx.num_devices();
  const int n_layers = model.num_layers();
  DE_REQUIRE(max_volumes_ >= 1, "max_volumes >= 1");

  // Linearise every (device, layer) once.
  std::vector<std::vector<LinearLayerCost>> lin(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lin[static_cast<std::size_t>(i)].reserve(static_cast<std::size_t>(n_layers));
    for (int l = 0; l < n_layers; ++l) {
      lin[static_cast<std::size_t>(i)].push_back(
          linearize(*ctx.latency[static_cast<std::size_t>(i)], model.layer(l)));
    }
  }

  double best_ms = std::numeric_limits<double>::infinity();
  std::vector<int> best_boundaries;
  enumerate_partitions(n_layers, max_volumes_, [&](const std::vector<int>& boundaries) {
    double total = 0.0;
    for (std::size_t v = 0; v + 1 < boundaries.size(); ++v) {
      const int first = boundaries[v];
      const int last = boundaries[v + 1];
      const auto cost = volume_cost(ctx, lin, first, last);
      total += predict_volume_ms(cost, model.layer(last - 1).out_h(), nullptr);
      if (total >= best_ms) return;  // prune
    }
    if (total < best_ms) {
      best_ms = total;
      best_boundaries = boundaries;
    }
  });
  DE_ASSERT(!best_boundaries.empty(), "AOFL found no partition");

  core::DistributionStrategy strategy;
  strategy.boundaries = best_boundaries;
  for (std::size_t v = 0; v + 1 < best_boundaries.size(); ++v) {
    const int first = best_boundaries[v];
    const int last = best_boundaries[v + 1];
    const auto cost = volume_cost(ctx, lin, first, last);
    std::vector<int> shares;
    predict_volume_ms(cost, model.layer(last - 1).out_h(), &shares);
    core::SplitDecision d;
    d.cuts.resize(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
      d.cuts[static_cast<std::size_t>(i) + 1] =
          d.cuts[static_cast<std::size_t>(i)] + shares[static_cast<std::size_t>(i)];
    }
    strategy.splits.push_back(std::move(d));
  }
  return strategy;
}

}  // namespace de::baselines
