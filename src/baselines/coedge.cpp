// CoEdge (Zeng et al., ToN 2020): cooperative DNN inference with adaptive
// workload partitioning — layer-by-layer splits sized by a *linear* joint
// model of per-device compute rate and link throughput.
#include "baselines/baselines.hpp"
#include "baselines/linear_model.hpp"

namespace de::baselines {

core::DistributionStrategy CoEdgePlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  const int n = ctx.num_devices();

  core::DistributionStrategy strategy;
  strategy.boundaries.push_back(0);
  for (int l = 0; l < model.num_layers(); ++l) {
    strategy.boundaries.push_back(l + 1);
    const auto& layer = model.layer(l);

    std::vector<double> a(static_cast<std::size_t>(n));
    std::vector<double> s(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto cost = linearize(*ctx.latency[static_cast<std::size_t>(i)], layer);
      const auto& link = ctx.network->link(i);
      // Per-row cost: compute + shipping the corresponding input rows
      // (stride rows of input per output row on average).
      const double tx_row =
          tx_ms_per_input_row(layer, link, ctx.plan_time_s) * layer.stride;
      a[static_cast<std::size_t>(i)] = cost.intercept_ms + link.io_fixed_ms;
      s[static_cast<std::size_t>(i)] = cost.slope_ms_per_row + tx_row;
    }
    const auto shares = waterfill_shares(layer.out_h(), a, s);
    core::SplitDecision d;
    d.cuts.resize(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
      d.cuts[static_cast<std::size_t>(i) + 1] =
          d.cuts[static_cast<std::size_t>(i)] + shares[static_cast<std::size_t>(i)];
    }
    strategy.splits.push_back(std::move(d));
  }
  return strategy;
}

}  // namespace de::baselines
