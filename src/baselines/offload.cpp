// Offload: the whole model on the provider with the best predicted
// single-device latency (paper baseline 7 — "the best computing hardware").
#include "baselines/baselines.hpp"

namespace de::baselines {

core::DistributionStrategy OffloadPlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  int best = 0;
  double best_ms = -1.0;
  for (int i = 0; i < ctx.num_devices(); ++i) {
    double total = 0.0;
    for (const auto& layer : model.layers()) {
      total += ctx.latency[static_cast<std::size_t>(i)]->layer_ms(layer, layer.out_h());
    }
    for (const auto& fc : model.fc_tail()) {
      total += ctx.latency[static_cast<std::size_t>(i)]->fc_ms(fc);
    }
    if (best_ms < 0.0 || total < best_ms) {
      best_ms = total;
      best = i;
    }
  }
  return core::single_device_strategy(model, ctx.num_devices(), best);
}

}  // namespace de::baselines
