// DeepThings (Zhao et al., TCAD 2018): fused tile partitioning — the conv
// stack is fused into a single volume and split *equally* across devices
// (the homogeneous-device assumption the paper's §V-G calls out).
#include "baselines/baselines.hpp"

namespace de::baselines {

core::DistributionStrategy DeepThingsPlanner::plan(const core::PlanContext& ctx) {
  ctx.validate();
  const auto& model = *ctx.model;
  core::DistributionStrategy strategy;
  strategy.boundaries = {0, model.num_layers()};
  strategy.splits.push_back(
      core::equal_split(model.layers().back().out_h(), ctx.num_devices()));
  return strategy;
}

}  // namespace de::baselines
