# Empty dependencies file for example_tcp_cluster_demo.
# This may be replaced when dependencies are built.
