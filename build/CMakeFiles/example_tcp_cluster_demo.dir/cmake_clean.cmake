file(REMOVE_RECURSE
  "CMakeFiles/example_tcp_cluster_demo.dir/examples/tcp_cluster_demo.cpp.o"
  "CMakeFiles/example_tcp_cluster_demo.dir/examples/tcp_cluster_demo.cpp.o.d"
  "example_tcp_cluster_demo"
  "example_tcp_cluster_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tcp_cluster_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
