# Empty dependencies file for de_common.
# This may be replaced when dependencies are built.
