file(REMOVE_RECURSE
  "CMakeFiles/de_common.dir/src/common/rng.cpp.o"
  "CMakeFiles/de_common.dir/src/common/rng.cpp.o.d"
  "CMakeFiles/de_common.dir/src/common/table.cpp.o"
  "CMakeFiles/de_common.dir/src/common/table.cpp.o.d"
  "CMakeFiles/de_common.dir/src/common/thread_pool.cpp.o"
  "CMakeFiles/de_common.dir/src/common/thread_pool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
