# Empty dependencies file for cnn_model_zoo_test.
# This may be replaced when dependencies are built.
