file(REMOVE_RECURSE
  "CMakeFiles/cnn_model_zoo_test.dir/tests/cnn/model_zoo_test.cpp.o"
  "CMakeFiles/cnn_model_zoo_test.dir/tests/cnn/model_zoo_test.cpp.o.d"
  "cnn_model_zoo_test"
  "cnn_model_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_model_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
