file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_random_splits.dir/bench/fig6_random_splits.cpp.o"
  "CMakeFiles/bench_fig6_random_splits.dir/bench/fig6_random_splits.cpp.o.d"
  "bench_fig6_random_splits"
  "bench_fig6_random_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_random_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
