file(REMOVE_RECURSE
  "CMakeFiles/core_cost_test.dir/tests/core/cost_test.cpp.o"
  "CMakeFiles/core_cost_test.dir/tests/core/cost_test.cpp.o.d"
  "core_cost_test"
  "core_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
