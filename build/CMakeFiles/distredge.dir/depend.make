# Empty dependencies file for distredge.
# This may be replaced when dependencies are built.
