file(REMOVE_RECURSE
  "libdistredge.a"
  "libdistredge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distredge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
