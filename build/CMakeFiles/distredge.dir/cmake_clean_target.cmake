file(REMOVE_RECURSE
  "libdistredge.a"
)
