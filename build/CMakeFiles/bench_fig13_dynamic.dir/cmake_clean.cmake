file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dynamic.dir/bench/fig13_dynamic.cpp.o"
  "CMakeFiles/bench_fig13_dynamic.dir/bench/fig13_dynamic.cpp.o.d"
  "bench_fig13_dynamic"
  "bench_fig13_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
