# Empty dependencies file for de_experiments.
# This may be replaced when dependencies are built.
