file(REMOVE_RECURSE
  "CMakeFiles/de_experiments.dir/src/experiments/harness.cpp.o"
  "CMakeFiles/de_experiments.dir/src/experiments/harness.cpp.o.d"
  "CMakeFiles/de_experiments.dir/src/experiments/scenarios.cpp.o"
  "CMakeFiles/de_experiments.dir/src/experiments/scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
