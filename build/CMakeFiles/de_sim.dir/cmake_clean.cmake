file(REMOVE_RECURSE
  "CMakeFiles/de_sim.dir/src/sim/exec_sim.cpp.o"
  "CMakeFiles/de_sim.dir/src/sim/exec_sim.cpp.o.d"
  "CMakeFiles/de_sim.dir/src/sim/stream_sim.cpp.o"
  "CMakeFiles/de_sim.dir/src/sim/stream_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
