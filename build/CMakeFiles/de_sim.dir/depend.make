# Empty dependencies file for de_sim.
# This may be replaced when dependencies are built.
