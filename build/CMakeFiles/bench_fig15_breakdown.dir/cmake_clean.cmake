file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_breakdown.dir/bench/fig15_breakdown.cpp.o"
  "CMakeFiles/bench_fig15_breakdown.dir/bench/fig15_breakdown.cpp.o.d"
  "bench_fig15_breakdown"
  "bench_fig15_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
