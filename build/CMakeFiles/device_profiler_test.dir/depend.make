# Empty dependencies file for device_profiler_test.
# This may be replaced when dependencies are built.
