file(REMOVE_RECURSE
  "CMakeFiles/device_profiler_test.dir/tests/device/profiler_test.cpp.o"
  "CMakeFiles/device_profiler_test.dir/tests/device/profiler_test.cpp.o.d"
  "device_profiler_test"
  "device_profiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
