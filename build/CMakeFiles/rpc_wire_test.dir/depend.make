# Empty dependencies file for rpc_wire_test.
# This may be replaced when dependencies are built.
