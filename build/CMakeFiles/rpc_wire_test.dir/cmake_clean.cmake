file(REMOVE_RECURSE
  "CMakeFiles/rpc_wire_test.dir/tests/rpc/wire_test.cpp.o"
  "CMakeFiles/rpc_wire_test.dir/tests/rpc/wire_test.cpp.o.d"
  "rpc_wire_test"
  "rpc_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
