# Empty dependencies file for de_baselines.
# This may be replaced when dependencies are built.
