file(REMOVE_RECURSE
  "CMakeFiles/de_baselines.dir/src/baselines/aofl.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/aofl.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/coedge.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/coedge.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/deeperthings.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/deeperthings.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/deepthings.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/deepthings.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/linear_model.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/linear_model.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/mednn.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/mednn.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/modnn.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/modnn.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/offload.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/offload.cpp.o.d"
  "CMakeFiles/de_baselines.dir/src/baselines/registry.cpp.o"
  "CMakeFiles/de_baselines.dir/src/baselines/registry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
