
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aofl.cpp" "CMakeFiles/de_baselines.dir/src/baselines/aofl.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/aofl.cpp.o.d"
  "/root/repo/src/baselines/coedge.cpp" "CMakeFiles/de_baselines.dir/src/baselines/coedge.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/coedge.cpp.o.d"
  "/root/repo/src/baselines/deeperthings.cpp" "CMakeFiles/de_baselines.dir/src/baselines/deeperthings.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/deeperthings.cpp.o.d"
  "/root/repo/src/baselines/deepthings.cpp" "CMakeFiles/de_baselines.dir/src/baselines/deepthings.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/deepthings.cpp.o.d"
  "/root/repo/src/baselines/linear_model.cpp" "CMakeFiles/de_baselines.dir/src/baselines/linear_model.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/linear_model.cpp.o.d"
  "/root/repo/src/baselines/mednn.cpp" "CMakeFiles/de_baselines.dir/src/baselines/mednn.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/mednn.cpp.o.d"
  "/root/repo/src/baselines/modnn.cpp" "CMakeFiles/de_baselines.dir/src/baselines/modnn.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/modnn.cpp.o.d"
  "/root/repo/src/baselines/offload.cpp" "CMakeFiles/de_baselines.dir/src/baselines/offload.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/offload.cpp.o.d"
  "/root/repo/src/baselines/registry.cpp" "CMakeFiles/de_baselines.dir/src/baselines/registry.cpp.o" "gcc" "CMakeFiles/de_baselines.dir/src/baselines/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
