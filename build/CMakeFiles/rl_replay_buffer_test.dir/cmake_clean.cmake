file(REMOVE_RECURSE
  "CMakeFiles/rl_replay_buffer_test.dir/tests/rl/replay_buffer_test.cpp.o"
  "CMakeFiles/rl_replay_buffer_test.dir/tests/rl/replay_buffer_test.cpp.o.d"
  "rl_replay_buffer_test"
  "rl_replay_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_replay_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
