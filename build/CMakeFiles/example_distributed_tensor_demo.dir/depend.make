# Empty dependencies file for example_distributed_tensor_demo.
# This may be replaced when dependencies are built.
