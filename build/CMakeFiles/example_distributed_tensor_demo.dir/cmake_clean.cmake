file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_tensor_demo.dir/examples/distributed_tensor_demo.cpp.o"
  "CMakeFiles/example_distributed_tensor_demo.dir/examples/distributed_tensor_demo.cpp.o.d"
  "example_distributed_tensor_demo"
  "example_distributed_tensor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_tensor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
