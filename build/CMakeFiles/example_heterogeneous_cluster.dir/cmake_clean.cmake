file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_cluster.dir/examples/heterogeneous_cluster.cpp.o"
  "CMakeFiles/example_heterogeneous_cluster.dir/examples/heterogeneous_cluster.cpp.o.d"
  "example_heterogeneous_cluster"
  "example_heterogeneous_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
