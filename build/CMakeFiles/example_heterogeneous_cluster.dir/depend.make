# Empty dependencies file for example_heterogeneous_cluster.
# This may be replaced when dependencies are built.
