# Empty dependencies file for net_trace_test.
# This may be replaced when dependencies are built.
