file(REMOVE_RECURSE
  "CMakeFiles/net_trace_test.dir/tests/net/trace_test.cpp.o"
  "CMakeFiles/net_trace_test.dir/tests/net/trace_test.cpp.o.d"
  "net_trace_test"
  "net_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
