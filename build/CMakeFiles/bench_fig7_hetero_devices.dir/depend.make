# Empty dependencies file for bench_fig7_hetero_devices.
# This may be replaced when dependencies are built.
