file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hetero_devices.dir/bench/fig7_hetero_devices.cpp.o"
  "CMakeFiles/bench_fig7_hetero_devices.dir/bench/fig7_hetero_devices.cpp.o.d"
  "bench_fig7_hetero_devices"
  "bench_fig7_hetero_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hetero_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
