# Empty dependencies file for device_synthetic_test.
# This may be replaced when dependencies are built.
