file(REMOVE_RECURSE
  "CMakeFiles/device_synthetic_test.dir/tests/device/synthetic_test.cpp.o"
  "CMakeFiles/device_synthetic_test.dir/tests/device/synthetic_test.cpp.o.d"
  "device_synthetic_test"
  "device_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
