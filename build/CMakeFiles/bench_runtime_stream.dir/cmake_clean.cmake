file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_stream.dir/bench/runtime_stream.cpp.o"
  "CMakeFiles/bench_runtime_stream.dir/bench/runtime_stream.cpp.o.d"
  "bench_runtime_stream"
  "bench_runtime_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
