# Empty dependencies file for bench_runtime_stream.
# This may be replaced when dependencies are built.
