file(REMOVE_RECURSE
  "CMakeFiles/de_device.dir/src/device/device.cpp.o"
  "CMakeFiles/de_device.dir/src/device/device.cpp.o.d"
  "CMakeFiles/de_device.dir/src/device/latency_table.cpp.o"
  "CMakeFiles/de_device.dir/src/device/latency_table.cpp.o.d"
  "CMakeFiles/de_device.dir/src/device/profiler.cpp.o"
  "CMakeFiles/de_device.dir/src/device/profiler.cpp.o.d"
  "CMakeFiles/de_device.dir/src/device/profiles.cpp.o"
  "CMakeFiles/de_device.dir/src/device/profiles.cpp.o.d"
  "CMakeFiles/de_device.dir/src/device/regression.cpp.o"
  "CMakeFiles/de_device.dir/src/device/regression.cpp.o.d"
  "CMakeFiles/de_device.dir/src/device/synthetic.cpp.o"
  "CMakeFiles/de_device.dir/src/device/synthetic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
