# Empty dependencies file for de_device.
# This may be replaced when dependencies are built.
