
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device.cpp" "CMakeFiles/de_device.dir/src/device/device.cpp.o" "gcc" "CMakeFiles/de_device.dir/src/device/device.cpp.o.d"
  "/root/repo/src/device/latency_table.cpp" "CMakeFiles/de_device.dir/src/device/latency_table.cpp.o" "gcc" "CMakeFiles/de_device.dir/src/device/latency_table.cpp.o.d"
  "/root/repo/src/device/profiler.cpp" "CMakeFiles/de_device.dir/src/device/profiler.cpp.o" "gcc" "CMakeFiles/de_device.dir/src/device/profiler.cpp.o.d"
  "/root/repo/src/device/profiles.cpp" "CMakeFiles/de_device.dir/src/device/profiles.cpp.o" "gcc" "CMakeFiles/de_device.dir/src/device/profiles.cpp.o.d"
  "/root/repo/src/device/regression.cpp" "CMakeFiles/de_device.dir/src/device/regression.cpp.o" "gcc" "CMakeFiles/de_device.dir/src/device/regression.cpp.o.d"
  "/root/repo/src/device/synthetic.cpp" "CMakeFiles/de_device.dir/src/device/synthetic.cpp.o" "gcc" "CMakeFiles/de_device.dir/src/device/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
