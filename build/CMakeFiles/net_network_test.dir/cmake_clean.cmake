file(REMOVE_RECURSE
  "CMakeFiles/net_network_test.dir/tests/net/network_test.cpp.o"
  "CMakeFiles/net_network_test.dir/tests/net/network_test.cpp.o.d"
  "net_network_test"
  "net_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
