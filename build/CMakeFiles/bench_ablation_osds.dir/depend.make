# Empty dependencies file for bench_ablation_osds.
# This may be replaced when dependencies are built.
