file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_osds.dir/bench/ablation_osds.cpp.o"
  "CMakeFiles/bench_ablation_osds.dir/bench/ablation_osds.cpp.o.d"
  "bench_ablation_osds"
  "bench_ablation_osds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_osds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
