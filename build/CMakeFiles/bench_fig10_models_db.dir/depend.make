# Empty dependencies file for bench_fig10_models_db.
# This may be replaced when dependencies are built.
