file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_models_db.dir/bench/fig10_models_db.cpp.o"
  "CMakeFiles/bench_fig10_models_db.dir/bench/fig10_models_db.cpp.o.d"
  "bench_fig10_models_db"
  "bench_fig10_models_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_models_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
