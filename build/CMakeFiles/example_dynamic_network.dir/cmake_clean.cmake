file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_network.dir/examples/dynamic_network.cpp.o"
  "CMakeFiles/example_dynamic_network.dir/examples/dynamic_network.cpp.o.d"
  "example_dynamic_network"
  "example_dynamic_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
