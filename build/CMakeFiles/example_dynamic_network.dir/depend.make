# Empty dependencies file for example_dynamic_network.
# This may be replaced when dependencies are built.
