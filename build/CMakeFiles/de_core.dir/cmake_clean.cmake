file(REMOVE_RECURSE
  "CMakeFiles/de_core.dir/src/core/cost.cpp.o"
  "CMakeFiles/de_core.dir/src/core/cost.cpp.o.d"
  "CMakeFiles/de_core.dir/src/core/distredge.cpp.o"
  "CMakeFiles/de_core.dir/src/core/distredge.cpp.o.d"
  "CMakeFiles/de_core.dir/src/core/lcpss.cpp.o"
  "CMakeFiles/de_core.dir/src/core/lcpss.cpp.o.d"
  "CMakeFiles/de_core.dir/src/core/osds.cpp.o"
  "CMakeFiles/de_core.dir/src/core/osds.cpp.o.d"
  "CMakeFiles/de_core.dir/src/core/serialize.cpp.o"
  "CMakeFiles/de_core.dir/src/core/serialize.cpp.o.d"
  "CMakeFiles/de_core.dir/src/core/split_env.cpp.o"
  "CMakeFiles/de_core.dir/src/core/split_env.cpp.o.d"
  "CMakeFiles/de_core.dir/src/core/strategy.cpp.o"
  "CMakeFiles/de_core.dir/src/core/strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
