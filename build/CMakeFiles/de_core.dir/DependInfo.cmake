
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost.cpp" "CMakeFiles/de_core.dir/src/core/cost.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/cost.cpp.o.d"
  "/root/repo/src/core/distredge.cpp" "CMakeFiles/de_core.dir/src/core/distredge.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/distredge.cpp.o.d"
  "/root/repo/src/core/lcpss.cpp" "CMakeFiles/de_core.dir/src/core/lcpss.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/lcpss.cpp.o.d"
  "/root/repo/src/core/osds.cpp" "CMakeFiles/de_core.dir/src/core/osds.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/osds.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "CMakeFiles/de_core.dir/src/core/serialize.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/serialize.cpp.o.d"
  "/root/repo/src/core/split_env.cpp" "CMakeFiles/de_core.dir/src/core/split_env.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/split_env.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "CMakeFiles/de_core.dir/src/core/strategy.cpp.o" "gcc" "CMakeFiles/de_core.dir/src/core/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
