# Empty dependencies file for de_core.
# This may be replaced when dependencies are built.
