# Empty dependencies file for bench_fig14_nonlinear.
# This may be replaced when dependencies are built.
