file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_nonlinear.dir/bench/fig14_nonlinear.cpp.o"
  "CMakeFiles/bench_fig14_nonlinear.dir/bench/fig14_nonlinear.cpp.o.d"
  "bench_fig14_nonlinear"
  "bench_fig14_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
