file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_large_scale.dir/bench/fig9_large_scale.cpp.o"
  "CMakeFiles/bench_fig9_large_scale.dir/bench/fig9_large_scale.cpp.o.d"
  "bench_fig9_large_scale"
  "bench_fig9_large_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_large_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
