# Empty dependencies file for bench_fig9_large_scale.
# This may be replaced when dependencies are built.
