# Empty dependencies file for core_lcpss_test.
# This may be replaced when dependencies are built.
