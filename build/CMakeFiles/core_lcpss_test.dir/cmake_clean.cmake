file(REMOVE_RECURSE
  "CMakeFiles/core_lcpss_test.dir/tests/core/lcpss_test.cpp.o"
  "CMakeFiles/core_lcpss_test.dir/tests/core/lcpss_test.cpp.o.d"
  "core_lcpss_test"
  "core_lcpss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lcpss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
