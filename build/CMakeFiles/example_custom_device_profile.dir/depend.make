# Empty dependencies file for example_custom_device_profile.
# This may be replaced when dependencies are built.
