file(REMOVE_RECURSE
  "CMakeFiles/example_custom_device_profile.dir/examples/custom_device_profile.cpp.o"
  "CMakeFiles/example_custom_device_profile.dir/examples/custom_device_profile.cpp.o.d"
  "example_custom_device_profile"
  "example_custom_device_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_device_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
