# Empty dependencies file for cnn_conv_exec_test.
# This may be replaced when dependencies are built.
