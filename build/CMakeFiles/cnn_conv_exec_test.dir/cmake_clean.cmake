file(REMOVE_RECURSE
  "CMakeFiles/cnn_conv_exec_test.dir/tests/cnn/conv_exec_test.cpp.o"
  "CMakeFiles/cnn_conv_exec_test.dir/tests/cnn/conv_exec_test.cpp.o.d"
  "cnn_conv_exec_test"
  "cnn_conv_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_conv_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
