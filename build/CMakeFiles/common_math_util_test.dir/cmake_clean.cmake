file(REMOVE_RECURSE
  "CMakeFiles/common_math_util_test.dir/tests/common/math_util_test.cpp.o"
  "CMakeFiles/common_math_util_test.dir/tests/common/math_util_test.cpp.o.d"
  "common_math_util_test"
  "common_math_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_math_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
