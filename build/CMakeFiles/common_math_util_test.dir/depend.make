# Empty dependencies file for common_math_util_test.
# This may be replaced when dependencies are built.
