# Empty dependencies file for bench_fig8_hetero_networks.
# This may be replaced when dependencies are built.
