file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hetero_networks.dir/bench/fig8_hetero_networks.cpp.o"
  "CMakeFiles/bench_fig8_hetero_networks.dir/bench/fig8_hetero_networks.cpp.o.d"
  "bench_fig8_hetero_networks"
  "bench_fig8_hetero_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hetero_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
