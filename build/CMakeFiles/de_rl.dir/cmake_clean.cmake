file(REMOVE_RECURSE
  "CMakeFiles/de_rl.dir/src/rl/ddpg.cpp.o"
  "CMakeFiles/de_rl.dir/src/rl/ddpg.cpp.o.d"
  "CMakeFiles/de_rl.dir/src/rl/replay_buffer.cpp.o"
  "CMakeFiles/de_rl.dir/src/rl/replay_buffer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
