# Empty dependencies file for de_rl.
# This may be replaced when dependencies are built.
