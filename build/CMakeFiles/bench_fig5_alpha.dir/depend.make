# Empty dependencies file for bench_fig5_alpha.
# This may be replaced when dependencies are built.
