file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_alpha.dir/bench/fig5_alpha.cpp.o"
  "CMakeFiles/bench_fig5_alpha.dir/bench/fig5_alpha.cpp.o.d"
  "bench_fig5_alpha"
  "bench_fig5_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
