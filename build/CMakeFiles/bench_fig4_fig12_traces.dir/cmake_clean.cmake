file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fig12_traces.dir/bench/fig4_fig12_traces.cpp.o"
  "CMakeFiles/bench_fig4_fig12_traces.dir/bench/fig4_fig12_traces.cpp.o.d"
  "bench_fig4_fig12_traces"
  "bench_fig4_fig12_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fig12_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
