# Empty dependencies file for bench_fig4_fig12_traces.
# This may be replaced when dependencies are built.
