# Empty dependencies file for experiments_scenarios_test.
# This may be replaced when dependencies are built.
