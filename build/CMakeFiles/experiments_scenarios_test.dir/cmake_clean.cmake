file(REMOVE_RECURSE
  "CMakeFiles/experiments_scenarios_test.dir/tests/experiments/scenarios_test.cpp.o"
  "CMakeFiles/experiments_scenarios_test.dir/tests/experiments/scenarios_test.cpp.o.d"
  "experiments_scenarios_test"
  "experiments_scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
