# Empty dependencies file for de_rpc.
# This may be replaced when dependencies are built.
