file(REMOVE_RECURSE
  "CMakeFiles/de_rpc.dir/src/rpc/inproc_transport.cpp.o"
  "CMakeFiles/de_rpc.dir/src/rpc/inproc_transport.cpp.o.d"
  "CMakeFiles/de_rpc.dir/src/rpc/tcp_transport.cpp.o"
  "CMakeFiles/de_rpc.dir/src/rpc/tcp_transport.cpp.o.d"
  "CMakeFiles/de_rpc.dir/src/rpc/wire.cpp.o"
  "CMakeFiles/de_rpc.dir/src/rpc/wire.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
