file(REMOVE_RECURSE
  "CMakeFiles/core_serialize_test.dir/tests/core/serialize_test.cpp.o"
  "CMakeFiles/core_serialize_test.dir/tests/core/serialize_test.cpp.o.d"
  "core_serialize_test"
  "core_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
