file(REMOVE_RECURSE
  "CMakeFiles/nn_adam_test.dir/tests/nn/adam_test.cpp.o"
  "CMakeFiles/nn_adam_test.dir/tests/nn/adam_test.cpp.o.d"
  "nn_adam_test"
  "nn_adam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_adam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
