# Empty dependencies file for nn_adam_test.
# This may be replaced when dependencies are built.
