file(REMOVE_RECURSE
  "CMakeFiles/device_regression_test.dir/tests/device/regression_test.cpp.o"
  "CMakeFiles/device_regression_test.dir/tests/device/regression_test.cpp.o.d"
  "device_regression_test"
  "device_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
