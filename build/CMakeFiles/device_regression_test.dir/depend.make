# Empty dependencies file for device_regression_test.
# This may be replaced when dependencies are built.
