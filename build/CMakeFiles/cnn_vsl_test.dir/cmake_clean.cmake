file(REMOVE_RECURSE
  "CMakeFiles/cnn_vsl_test.dir/tests/cnn/vsl_test.cpp.o"
  "CMakeFiles/cnn_vsl_test.dir/tests/cnn/vsl_test.cpp.o.d"
  "cnn_vsl_test"
  "cnn_vsl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_vsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
