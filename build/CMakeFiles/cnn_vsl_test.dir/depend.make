# Empty dependencies file for cnn_vsl_test.
# This may be replaced when dependencies are built.
