file(REMOVE_RECURSE
  "CMakeFiles/core_osds_test.dir/tests/core/osds_test.cpp.o"
  "CMakeFiles/core_osds_test.dir/tests/core/osds_test.cpp.o.d"
  "core_osds_test"
  "core_osds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_osds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
