# Empty dependencies file for core_osds_test.
# This may be replaced when dependencies are built.
