file(REMOVE_RECURSE
  "CMakeFiles/bench_update_time.dir/bench/update_time.cpp.o"
  "CMakeFiles/bench_update_time.dir/bench/update_time.cpp.o.d"
  "bench_update_time"
  "bench_update_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
