# Empty dependencies file for bench_update_time.
# This may be replaced when dependencies are built.
