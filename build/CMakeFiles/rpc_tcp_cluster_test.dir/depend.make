# Empty dependencies file for rpc_tcp_cluster_test.
# This may be replaced when dependencies are built.
