file(REMOVE_RECURSE
  "CMakeFiles/rpc_tcp_cluster_test.dir/tests/rpc/tcp_cluster_test.cpp.o"
  "CMakeFiles/rpc_tcp_cluster_test.dir/tests/rpc/tcp_cluster_test.cpp.o.d"
  "rpc_tcp_cluster_test"
  "rpc_tcp_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_tcp_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
