file(REMOVE_RECURSE
  "CMakeFiles/de_runtime.dir/src/runtime/cluster.cpp.o"
  "CMakeFiles/de_runtime.dir/src/runtime/cluster.cpp.o.d"
  "CMakeFiles/de_runtime.dir/src/runtime/fabric.cpp.o"
  "CMakeFiles/de_runtime.dir/src/runtime/fabric.cpp.o.d"
  "CMakeFiles/de_runtime.dir/src/runtime/mailbox.cpp.o"
  "CMakeFiles/de_runtime.dir/src/runtime/mailbox.cpp.o.d"
  "CMakeFiles/de_runtime.dir/src/runtime/serve.cpp.o"
  "CMakeFiles/de_runtime.dir/src/runtime/serve.cpp.o.d"
  "CMakeFiles/de_runtime.dir/src/runtime/transfer_plan.cpp.o"
  "CMakeFiles/de_runtime.dir/src/runtime/transfer_plan.cpp.o.d"
  "CMakeFiles/de_runtime.dir/src/runtime/worker.cpp.o"
  "CMakeFiles/de_runtime.dir/src/runtime/worker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
