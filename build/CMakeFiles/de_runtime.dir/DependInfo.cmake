
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster.cpp" "CMakeFiles/de_runtime.dir/src/runtime/cluster.cpp.o" "gcc" "CMakeFiles/de_runtime.dir/src/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/fabric.cpp" "CMakeFiles/de_runtime.dir/src/runtime/fabric.cpp.o" "gcc" "CMakeFiles/de_runtime.dir/src/runtime/fabric.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "CMakeFiles/de_runtime.dir/src/runtime/mailbox.cpp.o" "gcc" "CMakeFiles/de_runtime.dir/src/runtime/mailbox.cpp.o.d"
  "/root/repo/src/runtime/serve.cpp" "CMakeFiles/de_runtime.dir/src/runtime/serve.cpp.o" "gcc" "CMakeFiles/de_runtime.dir/src/runtime/serve.cpp.o.d"
  "/root/repo/src/runtime/transfer_plan.cpp" "CMakeFiles/de_runtime.dir/src/runtime/transfer_plan.cpp.o" "gcc" "CMakeFiles/de_runtime.dir/src/runtime/transfer_plan.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "CMakeFiles/de_runtime.dir/src/runtime/worker.cpp.o" "gcc" "CMakeFiles/de_runtime.dir/src/runtime/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
