# Empty dependencies file for de_runtime.
# This may be replaced when dependencies are built.
