# Empty dependencies file for rpc_transport_test.
# This may be replaced when dependencies are built.
