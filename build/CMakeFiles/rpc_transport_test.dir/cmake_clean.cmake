file(REMOVE_RECURSE
  "CMakeFiles/rpc_transport_test.dir/tests/rpc/transport_test.cpp.o"
  "CMakeFiles/rpc_transport_test.dir/tests/rpc/transport_test.cpp.o.d"
  "rpc_transport_test"
  "rpc_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
