# Empty dependencies file for de_cnn.
# This may be replaced when dependencies are built.
