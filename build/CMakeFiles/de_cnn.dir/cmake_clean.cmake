file(REMOVE_RECURSE
  "CMakeFiles/de_cnn.dir/src/cnn/conv_exec.cpp.o"
  "CMakeFiles/de_cnn.dir/src/cnn/conv_exec.cpp.o.d"
  "CMakeFiles/de_cnn.dir/src/cnn/layer.cpp.o"
  "CMakeFiles/de_cnn.dir/src/cnn/layer.cpp.o.d"
  "CMakeFiles/de_cnn.dir/src/cnn/layer_volume.cpp.o"
  "CMakeFiles/de_cnn.dir/src/cnn/layer_volume.cpp.o.d"
  "CMakeFiles/de_cnn.dir/src/cnn/model.cpp.o"
  "CMakeFiles/de_cnn.dir/src/cnn/model.cpp.o.d"
  "CMakeFiles/de_cnn.dir/src/cnn/model_zoo.cpp.o"
  "CMakeFiles/de_cnn.dir/src/cnn/model_zoo.cpp.o.d"
  "CMakeFiles/de_cnn.dir/src/cnn/vsl.cpp.o"
  "CMakeFiles/de_cnn.dir/src/cnn/vsl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
