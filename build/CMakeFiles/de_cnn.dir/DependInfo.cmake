
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cnn/conv_exec.cpp" "CMakeFiles/de_cnn.dir/src/cnn/conv_exec.cpp.o" "gcc" "CMakeFiles/de_cnn.dir/src/cnn/conv_exec.cpp.o.d"
  "/root/repo/src/cnn/layer.cpp" "CMakeFiles/de_cnn.dir/src/cnn/layer.cpp.o" "gcc" "CMakeFiles/de_cnn.dir/src/cnn/layer.cpp.o.d"
  "/root/repo/src/cnn/layer_volume.cpp" "CMakeFiles/de_cnn.dir/src/cnn/layer_volume.cpp.o" "gcc" "CMakeFiles/de_cnn.dir/src/cnn/layer_volume.cpp.o.d"
  "/root/repo/src/cnn/model.cpp" "CMakeFiles/de_cnn.dir/src/cnn/model.cpp.o" "gcc" "CMakeFiles/de_cnn.dir/src/cnn/model.cpp.o.d"
  "/root/repo/src/cnn/model_zoo.cpp" "CMakeFiles/de_cnn.dir/src/cnn/model_zoo.cpp.o" "gcc" "CMakeFiles/de_cnn.dir/src/cnn/model_zoo.cpp.o.d"
  "/root/repo/src/cnn/vsl.cpp" "CMakeFiles/de_cnn.dir/src/cnn/vsl.cpp.o" "gcc" "CMakeFiles/de_cnn.dir/src/cnn/vsl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
