file(REMOVE_RECURSE
  "CMakeFiles/core_strategy_test.dir/tests/core/strategy_test.cpp.o"
  "CMakeFiles/core_strategy_test.dir/tests/core/strategy_test.cpp.o.d"
  "core_strategy_test"
  "core_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
