# Empty dependencies file for bench_fig11_models_na.
# This may be replaced when dependencies are built.
