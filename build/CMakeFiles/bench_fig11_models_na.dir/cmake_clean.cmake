file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_models_na.dir/bench/fig11_models_na.cpp.o"
  "CMakeFiles/bench_fig11_models_na.dir/bench/fig11_models_na.cpp.o.d"
  "bench_fig11_models_na"
  "bench_fig11_models_na.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_models_na.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
