# Empty dependencies file for runtime_cluster_test.
# This may be replaced when dependencies are built.
