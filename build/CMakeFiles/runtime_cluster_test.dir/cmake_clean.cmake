file(REMOVE_RECURSE
  "CMakeFiles/runtime_cluster_test.dir/tests/runtime/cluster_test.cpp.o"
  "CMakeFiles/runtime_cluster_test.dir/tests/runtime/cluster_test.cpp.o.d"
  "runtime_cluster_test"
  "runtime_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
