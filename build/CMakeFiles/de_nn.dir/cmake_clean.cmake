file(REMOVE_RECURSE
  "CMakeFiles/de_nn.dir/src/nn/adam.cpp.o"
  "CMakeFiles/de_nn.dir/src/nn/adam.cpp.o.d"
  "CMakeFiles/de_nn.dir/src/nn/linear.cpp.o"
  "CMakeFiles/de_nn.dir/src/nn/linear.cpp.o.d"
  "CMakeFiles/de_nn.dir/src/nn/matrix.cpp.o"
  "CMakeFiles/de_nn.dir/src/nn/matrix.cpp.o.d"
  "CMakeFiles/de_nn.dir/src/nn/mlp.cpp.o"
  "CMakeFiles/de_nn.dir/src/nn/mlp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
