
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "CMakeFiles/de_nn.dir/src/nn/adam.cpp.o" "gcc" "CMakeFiles/de_nn.dir/src/nn/adam.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/de_nn.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/de_nn.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "CMakeFiles/de_nn.dir/src/nn/matrix.cpp.o" "gcc" "CMakeFiles/de_nn.dir/src/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "CMakeFiles/de_nn.dir/src/nn/mlp.cpp.o" "gcc" "CMakeFiles/de_nn.dir/src/nn/mlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
