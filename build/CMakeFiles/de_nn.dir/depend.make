# Empty dependencies file for de_nn.
# This may be replaced when dependencies are built.
