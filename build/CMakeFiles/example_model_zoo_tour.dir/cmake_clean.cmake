file(REMOVE_RECURSE
  "CMakeFiles/example_model_zoo_tour.dir/examples/model_zoo_tour.cpp.o"
  "CMakeFiles/example_model_zoo_tour.dir/examples/model_zoo_tour.cpp.o.d"
  "example_model_zoo_tour"
  "example_model_zoo_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_zoo_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
