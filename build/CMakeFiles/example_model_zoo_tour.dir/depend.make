# Empty dependencies file for example_model_zoo_tour.
# This may be replaced when dependencies are built.
