file(REMOVE_RECURSE
  "CMakeFiles/rl_ddpg_test.dir/tests/rl/ddpg_test.cpp.o"
  "CMakeFiles/rl_ddpg_test.dir/tests/rl/ddpg_test.cpp.o.d"
  "rl_ddpg_test"
  "rl_ddpg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_ddpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
