# Empty dependencies file for rl_ddpg_test.
# This may be replaced when dependencies are built.
