file(REMOVE_RECURSE
  "CMakeFiles/nn_mlp_test.dir/tests/nn/mlp_test.cpp.o"
  "CMakeFiles/nn_mlp_test.dir/tests/nn/mlp_test.cpp.o.d"
  "nn_mlp_test"
  "nn_mlp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
