# Empty dependencies file for de_net.
# This may be replaced when dependencies are built.
