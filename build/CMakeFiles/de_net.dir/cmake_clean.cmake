file(REMOVE_RECURSE
  "CMakeFiles/de_net.dir/src/net/link.cpp.o"
  "CMakeFiles/de_net.dir/src/net/link.cpp.o.d"
  "CMakeFiles/de_net.dir/src/net/network.cpp.o"
  "CMakeFiles/de_net.dir/src/net/network.cpp.o.d"
  "CMakeFiles/de_net.dir/src/net/trace.cpp.o"
  "CMakeFiles/de_net.dir/src/net/trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/de_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
