file(REMOVE_RECURSE
  "CMakeFiles/runtime_mailbox_test.dir/tests/runtime/mailbox_test.cpp.o"
  "CMakeFiles/runtime_mailbox_test.dir/tests/runtime/mailbox_test.cpp.o.d"
  "runtime_mailbox_test"
  "runtime_mailbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_mailbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
