# Empty dependencies file for runtime_mailbox_test.
# This may be replaced when dependencies are built.
