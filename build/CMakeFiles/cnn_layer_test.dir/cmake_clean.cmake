file(REMOVE_RECURSE
  "CMakeFiles/cnn_layer_test.dir/tests/cnn/layer_test.cpp.o"
  "CMakeFiles/cnn_layer_test.dir/tests/cnn/layer_test.cpp.o.d"
  "cnn_layer_test"
  "cnn_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
