# Empty dependencies file for cnn_layer_test.
# This may be replaced when dependencies are built.
