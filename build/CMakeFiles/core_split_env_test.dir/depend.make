# Empty dependencies file for core_split_env_test.
# This may be replaced when dependencies are built.
