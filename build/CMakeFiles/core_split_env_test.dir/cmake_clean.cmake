file(REMOVE_RECURSE
  "CMakeFiles/core_split_env_test.dir/tests/core/split_env_test.cpp.o"
  "CMakeFiles/core_split_env_test.dir/tests/core/split_env_test.cpp.o.d"
  "core_split_env_test"
  "core_split_env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_split_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
