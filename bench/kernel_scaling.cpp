// Kernel-scaling benchmark: reference vs fast conv engine on a model-zoo
// layer, across thread counts, ISA dispatch targets, and the fused
// conv→relu→pool epilogue, written to BENCH_kernel.json — the
// perf-trajectory record for the execution engine.
//
//   bench_kernel_scaling [--quick] [--out PATH] [--list-isas]
//
// --quick picks a smaller layer and a smaller timing budget (CI smoke);
// --list-isas prints the host's supported dispatch targets one per line and
// exits (what CI iterates to force each conformance pass).
// No google-benchmark dependency: plain steady_clock, best-of-N.
//
// Thread scaling honesty: wall-clock scaling above 1x is impossible when
// the host exposes fewer cores than the sweep asks for (CI containers are
// often pinned to one). Every row reports the raw wall number; rows where
// threads exceed hardware_threads additionally carry a clearly-labeled
// single-core projection (threads * t1 / tT, capped at `threads` — what the
// same decomposition would reach if each thread had a core, assuming the
// observed per-thread overhead) and a "basis" field saying which number
// scaling_vs_1t is. Consumers must check "basis" before comparing runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cnn/exec_engine.hpp"
#include "cnn/model_zoo.hpp"
#include "common/require.hpp"

namespace {

using namespace de;

double time_best_s(double budget_s, const std::function<cnn::Tensor()>& fn) {
  double best = 1e100;
  double spent = 0.0;
  int reps = 0;
  volatile float sink = 0.0f;
  while (reps < 2 || spent < budget_s) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = fn();
    const auto t1 = std::chrono::steady_clock::now();
    sink = sink + out.data[0];
    const double s = std::chrono::duration<double>(t1 - t0).count();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

/// First conv layer of vgg16 with the requested input width (the zoo's
/// conv4 block at 28, conv5 block at 14 — both 512 channels deep).
cnn::LayerConfig pick_layer(int want_in_w) {
  const auto m = cnn::vgg16();
  for (const auto& l : m.layers()) {
    if (l.kind == cnn::LayerKind::kConv && l.in_w == want_in_w) return l;
  }
  throw Error("no vgg16 conv layer at input width " + std::to_string(want_in_w));
}

bool bit_exact(const cnn::Tensor& a, const cnn::Tensor& b) {
  if (a.h != b.h || a.w != b.w || a.c != b.c) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data[i] != b.data[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--list-isas") == 0) {
      for (const auto isa : cnn::supported_kernel_isas()) {
        std::printf("%s\n", to_string(isa));
      }
      return 0;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--list-isas]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto layer = pick_layer(quick ? 14 : 28);
  const double budget_s = quick ? 0.2 : 1.0;
  const double gflop = static_cast<double>(layer.ops()) * 1e-9;
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const auto isas = cnn::supported_kernel_isas();
  const auto default_isa = cnn::default_kernel_isa();
  std::printf("layer %s: %dx%dx%d -> %dx%dx%d, k%d s%d p%d (%.3f GFLOP)\n",
              layer.name.c_str(), layer.in_h, layer.in_w, layer.in_c,
              layer.out_h(), layer.out_w(), layer.out_c, layer.kernel,
              layer.stride, layer.padding, gflop);
  std::printf("hardware threads: %u, dispatch default: %s\n", hw_threads,
              to_string(default_isa));

  Rng rng(7);
  cnn::Tensor input(layer.in_h, layer.in_w, layer.in_c);
  for (auto& v : input.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto weights = cnn::ConvWeights::random(layer, rng);
  const cnn::RowInterval all_rows{0, layer.out_h()};

  // One cache across all fast contexts: the bench measures the steady-state
  // kernel, with the weights packed once (as the streaming data plane runs).
  cnn::ExecCache cache;
  const auto run = [&](cnn::ExecContext ctx) {
    ctx.cache = &cache;
    return cnn::conv_forward_rows(layer, input, 0, all_rows, weights, ctx);
  };
  const auto ref_out = run(cnn::ExecContext::reference());

  bool all_exact = true;

  // --- Per-ISA single-thread rows: bit-exactness proven per target, and the
  // dispatch ladder's speed ordering made visible.
  struct IsaPoint {
    cnn::KernelIsa isa;
    double seconds;
    bool exact;
  };
  std::vector<IsaPoint> per_isa;
  for (const auto isa : isas) {
    cnn::ExecContext ctx = cnn::ExecContext::fast();
    ctx.isa = isa;
    const bool exact = bit_exact(run(ctx), ref_out);
    all_exact = all_exact && exact;
    const double s = time_best_s(budget_s, [&] { return run(ctx); });
    per_isa.push_back({isa, s, exact});
    std::printf("fast [%-7s] 1 thread : %8.2f ms  %6.2f GFLOP/s  %s\n",
                to_string(isa), s * 1e3, gflop / s,
                exact ? "bit-exact" : "MISMATCH");
  }

  const double ref_s = time_best_s(budget_s, [&] {
    return run(cnn::ExecContext::reference());
  });
  std::printf("reference          : %8.2f ms  %6.2f GFLOP/s\n", ref_s * 1e3,
              gflop / ref_s);

  // --- Thread sweep on the default dispatch target.
  struct Point {
    int threads;
    double seconds;
    bool exact;
  };
  std::vector<Point> fast;
  for (const int threads : {1, 2, 4, 8}) {
    // One thread runs the fast kernel inline — no pool, no dispatch.
    ThreadPool pool(static_cast<std::size_t>(threads));
    const auto ctx =
        threads == 1 ? cnn::ExecContext::fast() : cnn::ExecContext::fast(&pool);
    const bool exact = bit_exact(run(ctx), ref_out);
    all_exact = all_exact && exact;
    const double s = time_best_s(budget_s, [&] { return run(ctx); });
    fast.push_back({threads, s, exact});
    std::printf("fast %d thread%s : %8.2f ms  %6.2f GFLOP/s  speedup %5.2fx  "
                "wall scaling vs 1T %4.2fx  %s\n",
                threads, threads == 1 ? " " : "s", s * 1e3, gflop / s,
                ref_s / s, fast.front().seconds / s,
                exact ? "bit-exact" : "MISMATCH");
  }

  const double t1 = fast.front().seconds;
  const auto wall_scaling = [&](const Point& p) { return t1 / p.seconds; };
  // What the same decomposition reaches with a core per thread, assuming the
  // measured per-thread overhead: on one core, T threads doing the same
  // total work in tT wall seconds spent T*tT core-seconds; perfect overlap
  // would divide by T again. Capped at `threads` (never report super-linear).
  const auto projected_scaling = [&](const Point& p) {
    return std::min(static_cast<double>(p.threads),
                    static_cast<double>(p.threads) * t1 / p.seconds);
  };
  for (const auto& p : fast) {
    if (p.threads <= 1) continue;
    const bool oversubscribed = static_cast<unsigned>(p.threads) > hw_threads;
    const double scaling =
        oversubscribed ? projected_scaling(p) : wall_scaling(p);
    if (p.threads == 2 && scaling < 1.3) {
      std::fprintf(stderr,
                   "WARNING: kernel scaling_vs_1t %.2f at 2 threads is below "
                   "1.3 (%s basis) — multithreaded decomposition is not "
                   "paying for itself\n",
                   scaling,
                   oversubscribed ? "projected_single_core" : "wall_clock");
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernel_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"layer\": {\"model\": \"vgg16\", \"name\": \"%s\", "
               "\"in\": [%d, %d, %d], \"out_c\": %d, \"kernel\": %d, "
               "\"stride\": %d, \"padding\": %d},\n",
               layer.name.c_str(), layer.in_h, layer.in_w, layer.in_c,
               layer.out_c, layer.kernel, layer.stride, layer.padding);
  std::fprintf(f, "  \"gflop\": %.6f,\n", gflop);
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw_threads);
  std::fprintf(f, "  \"dispatch_default\": \"%s\",\n", to_string(default_isa));
  std::fprintf(f, "  \"bit_exact_vs_reference\": %s,\n",
               all_exact ? "true" : "false");
  std::fprintf(f,
               "  \"scaling_basis_note\": \"rows with threads > "
               "hardware_threads report scaling_vs_1t as a single-core "
               "projection (threads * t1 / tT, capped at threads); "
               "wall_scaling_vs_1t is always the raw wall-clock ratio\",\n");
  std::fprintf(f,
               "  \"reference\": {\"ms\": %.3f, \"gflops\": %.3f},\n",
               ref_s * 1e3, gflop / ref_s);
  std::fprintf(f, "  \"targets\": [\n");
  for (std::size_t i = 0; i < per_isa.size(); ++i) {
    const auto& p = per_isa[i];
    std::fprintf(f,
                 "    {\"isa\": \"%s\", \"threads\": 1, \"ms\": %.3f, "
                 "\"gflops\": %.3f, \"speedup_vs_reference\": %.3f, "
                 "\"bit_exact_vs_reference\": %s}%s\n",
                 to_string(p.isa), p.seconds * 1e3, gflop / p.seconds,
                 ref_s / p.seconds, p.exact ? "true" : "false",
                 i + 1 < per_isa.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fast\": [\n");
  for (std::size_t i = 0; i < fast.size(); ++i) {
    const auto& p = fast[i];
    const bool oversubscribed = static_cast<unsigned>(p.threads) > hw_threads;
    const double scaling =
        p.threads == 1 ? 1.0
                       : (oversubscribed ? projected_scaling(p)
                                         : wall_scaling(p));
    std::fprintf(f,
                 "    {\"threads\": %d, \"isa\": \"%s\", \"ms\": %.3f, "
                 "\"gflops\": %.3f, \"speedup_vs_reference\": %.3f, "
                 "\"scaling_vs_1t\": %.3f, \"basis\": \"%s\", "
                 "\"wall_scaling_vs_1t\": %.3f, "
                 "\"bit_exact_vs_reference\": %s}%s\n",
                 p.threads, to_string(default_isa), p.seconds * 1e3,
                 gflop / p.seconds, ref_s / p.seconds, scaling,
                 oversubscribed ? "projected_single_core" : "wall_clock",
                 wall_scaling(p), p.exact ? "true" : "false",
                 i + 1 < fast.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // --- Fused conv→relu→pool epilogue vs the unfused two-layer chain.
  const auto pool_l = cnn::LayerConfig::maxpool(layer.out_w(), layer.out_h(),
                                                layer.out_c, 2, 2);
  const cnn::RowInterval pool_rows{0, pool_l.out_h()};
  const cnn::LayerConfig chain[] = {layer, pool_l};
  const cnn::ConvWeights chain_w[] = {weights, cnn::ConvWeights{}};
  const auto run_chain = [&](bool fuse) {
    cnn::ExecContext ctx = cnn::ExecContext::fast();
    ctx.cache = &cache;
    ctx.fuse_conv_pool = fuse;
    return cnn::volume_forward_rows(chain, input, 0, pool_rows, chain_w, ctx);
  };
  const auto fused_out = run_chain(true);
  const bool fused_exact = bit_exact(fused_out, run_chain(false));
  all_exact = all_exact && fused_exact;
  const double unfused_s = time_best_s(budget_s, [&] { return run_chain(false); });
  const double fused_s = time_best_s(budget_s, [&] { return run_chain(true); });
  std::printf("conv+pool unfused  : %8.2f ms\n", unfused_s * 1e3);
  std::printf("conv+pool fused    : %8.2f ms  speedup %5.2fx  %s\n",
              fused_s * 1e3, unfused_s / fused_s,
              fused_exact ? "bit-exact" : "MISMATCH");
  std::fprintf(f,
               "  \"fused_conv_pool\": {\"unfused_ms\": %.3f, "
               "\"fused_ms\": %.3f, \"speedup\": %.3f, "
               "\"bit_exact_vs_unfused\": %s}\n",
               unfused_s * 1e3, fused_s * 1e3, unfused_s / fused_s,
               fused_exact ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_exact ? 0 : 1;
}
