// Kernel-scaling benchmark: reference vs fast conv engine on a model-zoo
// layer, at 1/2/4 row-band threads, written to BENCH_kernel.json — the
// perf-trajectory record for the execution engine (ISSUE 3 acceptance:
// >= 3x single-thread speedup, near-linear row-band scaling where the host
// has the cores for it).
//
//   bench_kernel_scaling [--quick] [--out PATH]
//
// --quick picks a smaller layer and a smaller timing budget (CI smoke).
// No google-benchmark dependency: plain steady_clock, best-of-N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cnn/exec_engine.hpp"
#include "cnn/model_zoo.hpp"
#include "common/require.hpp"

namespace {

using namespace de;

double time_best_s(double budget_s, const std::function<cnn::Tensor()>& fn) {
  double best = 1e100;
  double spent = 0.0;
  int reps = 0;
  volatile float sink = 0.0f;
  while (reps < 2 || spent < budget_s) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = fn();
    const auto t1 = std::chrono::steady_clock::now();
    sink = sink + out.data[0];
    const double s = std::chrono::duration<double>(t1 - t0).count();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

/// First conv layer of vgg16 with the requested input width (the zoo's
/// conv4 block at 28, conv5 block at 14 — both 512 channels deep).
cnn::LayerConfig pick_layer(int want_in_w) {
  const auto m = cnn::vgg16();
  for (const auto& l : m.layers()) {
    if (l.kind == cnn::LayerKind::kConv && l.in_w == want_in_w) return l;
  }
  throw Error("no vgg16 conv layer at input width " + std::to_string(want_in_w));
}

bool bit_exact(const cnn::Tensor& a, const cnn::Tensor& b) {
  if (a.h != b.h || a.w != b.w || a.c != b.c) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data[i] != b.data[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const auto layer = pick_layer(quick ? 14 : 28);
  const double budget_s = quick ? 0.2 : 1.0;
  const double gflop = static_cast<double>(layer.ops()) * 1e-9;
  std::printf("layer %s: %dx%dx%d -> %dx%dx%d, k%d s%d p%d (%.3f GFLOP)\n",
              layer.name.c_str(), layer.in_h, layer.in_w, layer.in_c,
              layer.out_h(), layer.out_w(), layer.out_c, layer.kernel,
              layer.stride, layer.padding, gflop);

  Rng rng(7);
  cnn::Tensor input(layer.in_h, layer.in_w, layer.in_c);
  for (auto& v : input.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto weights = cnn::ConvWeights::random(layer, rng);
  const cnn::RowInterval all_rows{0, layer.out_h()};

  // One cache across all fast contexts: the bench measures the steady-state
  // kernel, with the weights packed once (as the streaming data plane runs).
  cnn::ExecCache cache;
  const auto run = [&](cnn::ExecContext ctx) {
    ctx.cache = &cache;
    return cnn::conv_forward_rows(layer, input, 0, all_rows, weights, ctx);
  };

  const bool exact = bit_exact(run(cnn::ExecContext::fast()),
                               run(cnn::ExecContext::reference()));
  const double ref_s = time_best_s(budget_s, [&] {
    return run(cnn::ExecContext::reference());
  });
  std::printf("reference      : %8.2f ms  %6.2f GFLOP/s\n", ref_s * 1e3,
              gflop / ref_s);

  struct Point {
    int threads;
    double seconds;
  };
  std::vector<Point> fast;
  for (const int threads : {1, 2, 4}) {
    // One thread runs the fast kernel inline — no pool, no dispatch.
    ThreadPool pool(static_cast<std::size_t>(threads));
    const auto ctx =
        threads == 1 ? cnn::ExecContext::fast() : cnn::ExecContext::fast(&pool);
    const double s = time_best_s(budget_s, [&] { return run(ctx); });
    fast.push_back({threads, s});
    std::printf("fast %d thread%s : %8.2f ms  %6.2f GFLOP/s  speedup %5.2fx  "
                "scaling vs 1T %4.2fx\n",
                threads, threads == 1 ? " " : "s", s * 1e3, gflop / s,
                ref_s / s, fast.front().seconds / s);
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernel_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"layer\": {\"model\": \"vgg16\", \"name\": \"%s\", "
               "\"in\": [%d, %d, %d], \"out_c\": %d, \"kernel\": %d, "
               "\"stride\": %d, \"padding\": %d},\n",
               layer.name.c_str(), layer.in_h, layer.in_w, layer.in_c,
               layer.out_c, layer.kernel, layer.stride, layer.padding);
  std::fprintf(f, "  \"gflop\": %.6f,\n", gflop);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"bit_exact_vs_reference\": %s,\n",
               exact ? "true" : "false");
  std::fprintf(f,
               "  \"reference\": {\"ms\": %.3f, \"gflops\": %.3f},\n",
               ref_s * 1e3, gflop / ref_s);
  std::fprintf(f, "  \"fast\": [\n");
  for (std::size_t i = 0; i < fast.size(); ++i) {
    const auto& p = fast[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"ms\": %.3f, \"gflops\": %.3f, "
                 "\"speedup_vs_reference\": %.3f, \"scaling_vs_1t\": %.3f}%s\n",
                 p.threads, p.seconds * 1e3, gflop / p.seconds,
                 ref_s / p.seconds, fast.front().seconds / p.seconds,
                 i + 1 < fast.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return exact ? 0 : 1;
}
