// Fig. 5: effect of the LC-PSS trade-off alpha on end-to-end IPS, VGG-16,
// four environment types: (a) homogeneous devices at varying bandwidth,
// (b) heterogeneous device types (DB), (c) heterogeneous bandwidths (NA),
// (d) large-scale groups (LB/LC/LD).
//
// Note (EXPERIMENTS.md): the paper's testbed peaks at alpha = 0.75; this
// synthetic testbed peaks at alpha = 0.25 — the qualitative claim (poor at
// both extremes, best in the middle) is what this bench checks.
#include "bench_common.hpp"
#include "common/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace de;
  using device::DeviceType;
  const auto options = bench::parse_args(argc, argv);
  const std::vector<double> alphas{0.0, 0.25, 0.5, 0.75, 1.0};

  struct Env {
    std::string name;
    experiments::Scenario scenario;
  };
  std::vector<Env> envs;
  for (Mbps bw : {50.0, 100.0, 200.0, 300.0}) {
    envs.push_back({"(a) Nano x4 @" + std::to_string(int(bw)),
                    experiments::homogeneous(DeviceType::kNano, bw)});
  }
  envs.push_back({"(b) Group-DB @200", experiments::group_DB(200.0)});
  envs.push_back({"(c) Group-NA Nano", experiments::group_NA(DeviceType::kNano)});
  envs.push_back({"(d) Group-LB", experiments::group_LB()});
  envs.push_back({"(d) Group-LC", experiments::group_LC()});
  envs.push_back({"(d) Group-LD", experiments::group_LD()});

  std::vector<experiments::BuiltScenario> built;
  for (const auto& env : envs) built.push_back(experiments::build(env.scenario));

  struct Cell {
    double ips = 0;
    int volumes = 0;
  };
  std::vector<std::vector<Cell>> grid(alphas.size(),
                                      std::vector<Cell>(envs.size()));
  ThreadPool::shared().parallel_for(alphas.size() * envs.size(), [&](std::size_t k) {
    const std::size_t a = k / envs.size();
    const std::size_t e = k % envs.size();
    auto harness = bench::harness_options(options, built[e].scenario.num_devices());
    harness.distredge.alpha = alphas[a];
    const auto result = experiments::run_case("DistrEdge", built[e], harness);
    grid[a][e] = {result.ips, result.strategy.num_volumes()};
  });

  Table table("Fig. 5 — DistrEdge IPS vs alpha (volumes in parentheses)");
  std::vector<std::string> header{"alpha"};
  for (const auto& env : envs) header.push_back(env.name);
  table.set_header(std::move(header));
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    std::vector<std::string> row{fmt_double(alphas[a], 2)};
    for (std::size_t e = 0; e < envs.size(); ++e) {
      row.push_back(fmt_double(grid[a][e].ips, 2) + " (" +
                    std::to_string(grid[a][e].volumes) + "v)");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
