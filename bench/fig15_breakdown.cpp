// Fig. 15: maximum per-device transmission time vs maximum per-device
// computing time for each method — why DistrEdge wins (§V-G). Group-DB at
// 50 Mbps, VGG-16.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);
  const auto built = experiments::build(experiments::group_DB(50.0));
  const auto harness = bench::harness_options(options);

  Table table("Fig. 15 — max transmission / max computing latency per device "
              "(ms), DB @ 50 Mbps");
  table.set_header({"method", "max tx", "max compute", "end-to-end", "IPS"});
  for (const auto& name : baselines::figure_planner_names()) {
    const auto result = experiments::run_case(name, built, harness);
    const double max_tx = *std::max_element(result.breakdown.device_tx_ms.begin(),
                                            result.breakdown.device_tx_ms.end());
    const double max_compute =
        *std::max_element(result.breakdown.device_compute_ms.begin(),
                          result.breakdown.device_compute_ms.end());
    table.add_row(name, {max_tx, max_compute, result.breakdown.total_ms, result.ips});
  }
  table.print(std::cout);
  std::cout << "\nLayer-by-layer methods are transmission-bound; equal-split\n"
               "methods are compute-bound on the slowest device; DistrEdge\n"
               "balances both (paper §V-G).\n";
  return 0;
}
