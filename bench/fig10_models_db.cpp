// Fig. 10: IPS across seven further models (ResNet50 ... VoxelNet) on
// Group-DB at 50 Mbps.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);
  std::vector<experiments::Scenario> scenarios;
  for (const auto& model : cnn::zoo_names()) {
    if (model == "vgg16") continue;  // Fig. 7 covers VGG-16
    auto s = experiments::group_DB(50.0);
    s.model_name = model;
    s.name = model;
    scenarios.push_back(std::move(s));
  }
  bench::run_figure("Fig. 10 — model zoo, Group-DB, 50 Mbps", scenarios, options);
  return 0;
}
