// Fig. 7: IPS under heterogeneous device types (Table I groups DA/DB/DC),
// VGG-16, at 50 and 300 Mbps WiFi.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);
  bench::run_figure("Fig. 7(a) — heterogeneous devices, VGG-16, 50 Mbps",
                    {experiments::group_DA(50), experiments::group_DB(50),
                     experiments::group_DC(50)},
                    options);
  bench::run_figure("Fig. 7(b) — heterogeneous devices, VGG-16, 300 Mbps",
                    {experiments::group_DA(300), experiments::group_DB(300),
                     experiments::group_DC(300)},
                    options);
  return 0;
}
