// Fig. 6: IPS stability vs the number of random split decisions |Rs| in
// LC-PSS. For each |Rs| the partition search is repeated with different
// random-set seeds; the min / mean / max IPS over the repeats shows how the
// partition (and hence performance) stabilises once |Rs| >= 100.
#include <map>

#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);
  const int repeats = options.paper_scale ? 50 : 15;
  const std::vector<int> sizes{25, 50, 75, 100, 125, 150};

  struct Case {
    std::string name;
    experiments::Scenario scenario;
  };
  const std::vector<Case> cases{
      {"DB@50Mbps", experiments::group_DB(50.0)},
      {"NA@Nano", experiments::group_NA(device::DeviceType::kNano)}};

  for (const auto& c : cases) {
    const auto built = experiments::build(c.scenario);
    Table table("Fig. 6 — IPS vs |Rs| over " + std::to_string(repeats) +
                " LC-PSS repetitions (" + c.name + ")");
    table.set_header({"|Rs|", "min IPS", "mean IPS", "max IPS", "#partitions"});

    for (int size : sizes) {
      // Run LC-PSS `repeats` times with different random-set seeds; OSDS is
      // only trained once per distinct partition (cache).
      std::vector<std::vector<int>> partitions(static_cast<std::size_t>(repeats));
      ThreadPool::shared().parallel_for(
          static_cast<std::size_t>(repeats), [&](std::size_t r) {
            core::LcpssConfig config;
            config.n_random_splits = size;
            config.n_devices = c.scenario.num_devices();
            config.seed = 1000 + r;
            config.parallel = false;
            partitions[r] = core::run_lcpss(built.model, config).boundaries;
          });

      std::map<std::vector<int>, double> ips_by_partition;
      for (const auto& p : partitions) ips_by_partition.emplace(p, 0.0);
      std::vector<std::vector<int>> distinct;
      for (auto& [p, ips] : ips_by_partition) distinct.push_back(p);
      std::vector<double> distinct_ips(distinct.size());
      ThreadPool::shared().parallel_for(distinct.size(), [&](std::size_t i) {
        core::OsdsConfig osds = core::OsdsConfig::fast();
        osds.max_episodes = options.paper_scale ? 4000 : 300;
        const auto r = core::run_osds(built.model, distinct[i], built.latency,
                                      built.network, osds);
        distinct_ips[i] = 1000.0 / r.best_ms;
      });
      for (std::size_t i = 0; i < distinct.size(); ++i) {
        ips_by_partition[distinct[i]] = distinct_ips[i];
      }

      std::vector<double> ips;
      ips.reserve(partitions.size());
      for (const auto& p : partitions) ips.push_back(ips_by_partition[p]);
      table.add_row("|Rs|=" + std::to_string(size),
                    {min_of(ips), mean(ips), max_of(ips),
                     static_cast<double>(distinct.size())});
    }
    table.print(std::cout);
    std::cout << std::endl;
  }
  return 0;
}
