// Fig. 9: IPS with 16 service providers (Table III groups LA/LB/LC/LD),
// VGG-16.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace de;
  auto options = bench::parse_args(argc, argv);
  if (!options.paper_scale) options.episodes = 400;  // 16-way cases are heavier
  bench::run_figure("Fig. 9 — 16-device large-scale groups, VGG-16",
                    {experiments::group_LA(), experiments::group_LB(),
                     experiments::group_LC(), experiments::group_LD()},
                    options);
  return 0;
}
