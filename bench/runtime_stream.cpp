// Streaming throughput of the real data plane, A/B'd in one run: the PR-3
// serial copying chunk path (kSerialCopy — receive-all -> compute-all ->
// send-all, slice/encode/decode/blit copies, per-chunk allocations) versus
// the zero-copy halo-first overlapped plane (kOverlapZeroCopy — arena
// frames, wire-byte blits, boundary-band-first compute with a dedicated
// sender thread). Both paths are bit-exact by construction (the outputs are
// cross-checked here too), so the only difference is data-plane cost.
//
// The workload is the zoo's edge tier (edgenet by default) under a
// DistrEdge-style network-adaptive strategy: every layer is its own volume
// and consecutive volumes use staggered cuts, so each boundary genuinely
// redistributes rows between devices — the regime edge clusters live in,
// where the data plane (not FLOPs) bounds IPS. Results land in
// BENCH_stream.json: measured IPS both ways, speedup, wire bytes, copies
// per halo byte, and frame-buffer allocations per image.
//
//   bench_runtime_stream [--quick] [--out PATH] [--images N]
//                        [--model NAME] [--devices N] [--inflight K]
//
// --quick shrinks the image count (CI smoke). Loopback TCP throughout —
// chunks really cross the kernel's TCP stack.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cnn/model_zoo.hpp"
#include "common/require.hpp"
#include "runtime/serve.hpp"

namespace {

using namespace de;

/// Per-layer volumes with staggered equal splits: even volumes cut at
/// j*h/n, odd volumes at the midpoints ((2j-1)*h)/(2n) — so every volume
/// boundary moves most rows to a different device, like re-planned splits
/// on a heterogeneous cluster do (paper §IV: per-volume split decisions).
sim::RawStrategy staggered_strategy(const cnn::CnnModel& m, int n_devices) {
  sim::RawStrategy strategy;
  std::vector<int> boundaries;
  for (int l = 0; l <= m.num_layers(); ++l) boundaries.push_back(l);
  strategy.volumes =
      cnn::volumes_from_boundaries(boundaries, m.num_layers());
  for (std::size_t v = 0; v < strategy.volumes.size(); ++v) {
    const int h = cnn::volume_out_height(m, strategy.volumes[v]);
    std::vector<int> cuts{0};
    for (int j = 1; j < n_devices; ++j) {
      const int at = v % 2 == 0 ? j * h / n_devices
                                : std::min(h, ((2 * j - 1) * h + n_devices) /
                                                  (2 * n_devices));
      cuts.push_back(std::clamp(at, cuts.back(), h));
    }
    cuts.push_back(h);
    strategy.cuts.push_back(std::move(cuts));
  }
  return strategy;
}

struct ModeResult {
  double ips = 0;
  double wall_s = 0;
  runtime::ServeResult serve;
};

bool outputs_equal(const std::vector<cnn::Tensor>& a,
                   const std::vector<cnn::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].data != b[k].data) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_stream.json";
  std::string model_name = "edgenet";
  int n_images = 0;
  int n_devices = 6;  // the paper-scale edge cluster (fig. 7-9 tier)
  int inflight = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      n_images = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_name = argv[++i];
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      inflight = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--images N] "
                   "[--model NAME] [--devices N] [--inflight K]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_images == 0) n_images = quick ? 16 : 96;

  const auto model = cnn::model_by_name(model_name);
  const auto strategy = staggered_strategy(model, n_devices);

  Rng rng(123);
  const auto weights = runtime::random_weights(model, rng);
  std::vector<cnn::Tensor> images;
  images.reserve(static_cast<std::size_t>(n_images));
  for (int k = 0; k < n_images; ++k) {
    cnn::Tensor t(model.input_h(), model.input_w(), model.input_c());
    for (auto& v : t.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    images.push_back(std::move(t));
  }

  std::printf("model %s: %dx%dx%d, %d layers, %.3f GFLOP/image\n",
              model.name().c_str(), model.input_h(), model.input_w(),
              model.input_c(), model.num_layers(),
              static_cast<double>(model.conv_chain_ops()) * 1e-9);
  std::printf("strategy: %d per-layer volumes, staggered cuts, %d devices, "
              "K=%d in flight, %d images, loopback TCP\n\n",
              static_cast<int>(strategy.volumes.size()), n_devices, inflight,
              n_images);

  const auto run_mode = [&](runtime::DataPlaneMode mode) {
    runtime::ServeOptions options;
    options.use_tcp = true;
    options.inflight = inflight;
    options.keep_outputs = true;  // cross-checked below
    options.data_plane = mode;
    ModeResult r;
    r.serve = runtime::serve_stream(model, strategy, weights, images,
                                    n_devices, options);
    r.ips = r.serve.measured_ips;
    r.wall_s = r.serve.wall_s;
    return r;
  };

  // Warm-up lap (page cache, TCP handshakes, malloc arenas), then measure
  // both planes interleaved, best-of-N each — the same discipline
  // bench_kernel_scaling uses, so one noisy lap on a busy host cannot skew
  // the A/B ratio either way.
  (void)run_mode(runtime::DataPlaneMode::kOverlapZeroCopy);
  const int laps = quick ? 1 : 3;
  ModeResult serial, overlap;
  for (int lap = 0; lap < laps; ++lap) {
    auto s = run_mode(runtime::DataPlaneMode::kSerialCopy);
    auto o = run_mode(runtime::DataPlaneMode::kOverlapZeroCopy);
    if (lap == 0 || s.ips > serial.ips) serial = std::move(s);
    if (lap == 0 || o.ips > overlap.ips) overlap = std::move(o);
  }
  const bool exact = outputs_equal(serial.serve.outputs, overlap.serve.outputs);
  const double speedup = serial.ips > 0 ? overlap.ips / serial.ips : 0.0;

  const auto describe = [&](const char* name, const ModeResult& r) {
    const double copies =
        r.serve.bytes_moved > 0
            ? static_cast<double>(r.serve.bytes_copied) /
                  static_cast<double>(r.serve.bytes_moved)
            : 0.0;
    std::printf("%-18s: %7.2f IPS  wall %.3fs  %lld msgs  %.2f MiB payload  "
                "%.2f MiB wire  %.2f copies/halo-byte  %lld frame allocs "
                "(%.2f/image)\n",
                name, r.ips, r.wall_s,
                static_cast<long long>(r.serve.messages_exchanged),
                static_cast<double>(r.serve.bytes_moved) / (1 << 20),
                static_cast<double>(r.serve.wire_bytes) / (1 << 20), copies,
                static_cast<long long>(r.serve.frame_allocs),
                static_cast<double>(r.serve.frame_allocs) / n_images);
    return copies;
  };
  const double serial_copies = describe("serial-copy", serial);
  const double overlap_copies = describe("overlap-zero-copy", overlap);
  std::printf("\nspeedup (overlap-zero-copy vs serial-copy): %.2fx, "
              "bit-exact outputs: %s\n",
              speedup, exact ? "yes" : "NO");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"runtime_stream\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"workload\": {\"model\": \"%s\", \"gflop_per_image\": %.6f, "
               "\"images\": %d, \"devices\": %d, \"inflight\": %d, "
               "\"volumes\": %d, \"transport\": \"tcp-loopback\", "
               "\"strategy\": \"per-layer volumes, staggered cuts\"},\n",
               model.name().c_str(),
               static_cast<double>(model.conv_chain_ops()) * 1e-9, n_images,
               n_devices, inflight, static_cast<int>(strategy.volumes.size()));
  std::fprintf(f, "  \"bit_exact_across_modes\": %s,\n",
               exact ? "true" : "false");
  const auto emit = [&](const char* key, const ModeResult& r, double copies) {
    std::fprintf(f,
                 "  \"%s\": {\"ips\": %.3f, \"wall_s\": %.4f, "
                 "\"messages\": %lld, \"payload_bytes\": %lld, "
                 "\"wire_bytes\": %lld, \"bytes_copied\": %lld, "
                 "\"copies_per_halo_byte\": %.3f, \"frame_allocs\": %lld, "
                 "\"frame_allocs_per_image\": %.3f}",
                 key, r.ips, r.wall_s,
                 static_cast<long long>(r.serve.messages_exchanged),
                 static_cast<long long>(r.serve.bytes_moved),
                 static_cast<long long>(r.serve.wire_bytes),
                 static_cast<long long>(r.serve.bytes_copied), copies,
                 static_cast<long long>(r.serve.frame_allocs),
                 static_cast<double>(r.serve.frame_allocs) / n_images);
  };
  emit("serial_copy_baseline", serial, serial_copies);
  std::fprintf(f, ",\n");
  emit("overlap_zero_copy", overlap, overlap_copies);
  std::fprintf(f, ",\n");
  std::fprintf(f, "  \"speedup_overlap_vs_serial\": %.3f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return exact ? 0 : 1;
}
