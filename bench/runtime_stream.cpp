// Pipelined serving throughput on the real data plane: measured wall-clock
// IPS over the in-process and loopback-TCP transports as the number of
// in-flight images K grows, next to the event simulator's (sequential-
// stream) prediction for the same strategy. K = 1 approximates the
// simulator's semantics; larger K overlaps scatter/compute/gather and
// should beat it on multi-core hosts.
//
//   $ ./bench_runtime_stream [--images N]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/strategy.hpp"
#include "device/device.hpp"
#include "runtime/serve.hpp"

int main(int argc, char** argv) {
  using namespace de;

  int n_images = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      n_images = std::max(1, std::atoi(argv[i + 1]));
    }
  }
  const int n_devices = 4;

  const auto model = cnn::ModelBuilder("bench", 96, 96, 3)
                         .conv_same(16, 3)
                         .conv_same(16, 3)
                         .maxpool(2, 2)
                         .conv_same(32, 3)
                         .conv_same(32, 3)
                         .maxpool(2, 2)
                         .conv_same(64, 3)
                         .conv_same(64, 3)
                         .build();

  Rng rng(123);
  const auto weights = runtime::random_weights(model, rng);
  std::vector<cnn::Tensor> images;
  images.reserve(static_cast<std::size_t>(n_images));
  for (int k = 0; k < n_images; ++k) {
    cnn::Tensor t(model.input_h(), model.input_w(), model.input_c());
    for (auto& v : t.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    images.push_back(std::move(t));
  }

  sim::RawStrategy strategy;
  strategy.volumes =
      cnn::volumes_from_boundaries({0, 5, model.num_layers()}, model.num_layers());
  for (const auto& v : strategy.volumes) {
    strategy.cuts.push_back(
        core::equal_split(cnn::volume_out_height(model, v), n_devices).cuts);
  }

  sim::ClusterLatency latency;
  for (int i = 0; i < n_devices; ++i) {
    latency.push_back(device::make_latency_model(device::DeviceType::kNano));
  }
  net::Network network(n_devices);

  const std::vector<int> inflight{1, 2, 4, 8};
  Table table("Pipelined serving: measured IPS vs in-flight images K (" +
              std::to_string(n_images) + " images, 4 devices)");
  std::vector<std::string> header{"transport"};
  for (int k : inflight) header.push_back("K=" + std::to_string(k));
  header.push_back("sim-predicted");
  table.set_header(std::move(header));

  double predicted = 0;
  for (const bool use_tcp : {false, true}) {
    std::vector<double> row;
    for (int k : inflight) {
      runtime::ServeOptions options;
      options.use_tcp = use_tcp;
      options.inflight = k;
      if (!use_tcp && k == inflight.front()) {
        options.latency = &latency;
        options.network = &network;
      }
      const auto served = runtime::serve_stream(model, strategy, weights,
                                                images, n_devices, options);
      if (served.predicted_ips > 0) predicted = served.predicted_ips;
      row.push_back(served.measured_ips);
    }
    row.push_back(predicted);
    table.add_row(use_tcp ? "tcp" : "inproc", row);
  }
  table.print(std::cout);
  std::cout << "(prediction uses calibrated Jetson-Nano latency models; the\n"
               " measured numbers are this host's cores doing real float conv)\n";
  return 0;
}
