// §V-F strategy-update cost on the controller: DistrEdge re-plans with the
// lightweight LC-PSS + actor fine-tuning; AOFL re-runs its brute-force
// partition search. The paper measured 20-210 s vs ~10 min on a laptop
// controller driving real devices; here both planners run in-process against
// the simulator, so we report the wall times and their ratio (the shape:
// LC-PSS + fine-tune is far cheaper than exhaustive partition search at
// equal fidelity).
#include <chrono>

#include "bench_common.hpp"
#include "baselines/baselines.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);
  const auto built = experiments::build(experiments::group_DB(100.0));
  auto ctx = built.context();

  using clock = std::chrono::steady_clock;
  auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  Table table("§V-F — strategy update wall time on the controller");
  table.set_header({"method", "initial plan (s)", "update (s)"});

  // DistrEdge: full plan once, then fine-tune updates.
  {
    auto config = core::DistrEdgeConfig::fast();
    config.osds.max_episodes = options.episodes;
    core::DistrEdgePlanner planner(config);
    auto t0 = clock::now();
    planner.plan(ctx);
    const double initial = seconds_since(t0);
    t0 = clock::now();
    planner.replan(ctx, options.episodes / 3);
    const double update = seconds_since(t0);
    table.add_row("DistrEdge", {initial, update}, 3);
  }

  // AOFL: every update repeats the brute-force partition search. Use the
  // deeper search depth to reflect its exhaustive nature.
  {
    baselines::AoflPlanner planner(5);
    auto t0 = clock::now();
    planner.plan(ctx);
    const double initial = seconds_since(t0);
    t0 = clock::now();
    planner.plan(ctx);
    const double update = seconds_since(t0);
    table.add_row("AOFL (5 volumes)", {initial, update}, 3);
  }

  // CoEdge: linear waterfilling per layer — near-instant, for reference.
  {
    baselines::CoEdgePlanner planner;
    auto t0 = clock::now();
    planner.plan(ctx);
    const double initial = seconds_since(t0);
    t0 = clock::now();
    planner.plan(ctx);
    const double update = seconds_since(t0);
    table.add_row("CoEdge", {initial, update}, 3);
  }

  table.print(std::cout);
  std::cout << "\nPaper §V-F: DistrEdge updates in 20-210 s on the controller\n"
               "(fine-tuning against live device measurements); AOFL needs\n"
               "~10 min because the partition search is exhaustive. In this\n"
               "repo both run against the simulator, so absolute times are\n"
               "smaller; the DistrEdge update << DistrEdge initial plan and\n"
               "AOFL update == AOFL initial plan relations are the result.\n";
  return 0;
}
