// Adaptive serving on the real data plane, A/B'd in one run: the same
// image stream is served twice over a shaped loopback-TCP fabric whose
// device-0 radio collapses partway through (a deterministic two-regime
// trace — the Fig. 12 situation distilled) —
//
//  * static   — the strategy planned for the healthy regime serves the
//               whole stream (what the runtime did before the control
//               plane existed);
//  * adaptive — providers publish kTelemetry every image, the controller
//               thread aggregates achieved link rates, detects the regime
//               drift, replans against the refreshed network view, and the
//               requester swaps strategies mid-stream via a kReconfigure
//               epoch with zero pipeline drain.
//
// Both runs must produce bit-identical outputs (cross-checked here); the
// adaptive one should finish the stream materially faster because the
// post-collapse images stop waiting on the dead radio. Results land in
// BENCH_adaptive.json. Exit status gates on >= 1 reconfiguration and
// bit-exactness, NOT on the IPS ratio (CI runners are noisy); the ratio is
// recorded for the log.
//
//   bench_runtime_adaptive [--quick] [--out PATH] [--images N]
//                          [--devices N] [--model NAME] [--inflight K]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cnn/model_zoo.hpp"
#include "common/require.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/planner.hpp"
#include "device/device.hpp"
#include "runtime/serve.hpp"

namespace {

using namespace de;

bool outputs_equal(const std::vector<cnn::Tensor>& a,
                   const std::vector<cnn::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].data != b[k].data) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_adaptive.json";
  std::string model_name = "edgenet";
  int n_images = 0;
  int n_devices = 4;
  int inflight = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      n_images = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = std::max(2, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_name = argv[++i];
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      inflight = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--images N] "
                   "[--devices N] [--model NAME] [--inflight K]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_images == 0) n_images = quick ? 160 : 240;

  const auto model = cnn::model_by_name(model_name);
  Rng rng(123);
  const auto weights = runtime::random_weights(model, rng);
  std::vector<cnn::Tensor> images;
  images.reserve(static_cast<std::size_t>(n_images));
  for (int k = 0; k < n_images; ++k) {
    cnn::Tensor t(model.input_h(), model.input_w(), model.input_c());
    for (auto& v : t.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    images.push_back(std::move(t));
  }

  // Two-regime shaped fabric: every radio holds `hi` except device 0's,
  // which collapses to `lo` after `collapse_s` of wall time and stays
  // there (the trace clamps at its end).
  const Mbps hi = 90.0;
  const Mbps lo = 6.0;
  const double collapse_s = quick ? 0.6 : 1.5;
  rpc::ShapingSpec shaping;
  shaping.time_scale = 1.0;
  shaping.node_traces.assign(static_cast<std::size_t>(n_devices) + 1,
                             net::ThroughputTrace::constant(hi));
  shaping.node_traces[0] = net::ThroughputTrace(collapse_s, {hi, lo});

  // Planner-facing baseline: the healthy regime. Compute knowledge is the
  // synthetic Nano model; the controller's calibration rescales it from
  // telemetry (the host SSE engine is much faster than a Nano).
  net::Network baseline(n_devices, hi, hi);
  sim::ClusterLatency latency;
  for (int i = 0; i < n_devices; ++i) {
    latency.push_back(device::make_latency_model(device::DeviceType::kNano));
  }
  ctrl::BandwidthProportionalPlanner planner;
  core::PlanContext plan_ctx;
  plan_ctx.model = &model;
  plan_ctx.latency = latency;
  plan_ctx.network = &baseline;
  const auto initial = planner.plan(plan_ctx).to_raw(model);

  std::printf("model %s: %dx%dx%d, %d layers; %d devices, %d images, K=%d, "
              "loopback TCP, shaped links\n",
              model.name().c_str(), model.input_h(), model.input_w(),
              model.input_c(), model.num_layers(), n_devices, n_images,
              inflight);
  std::printf("regime: all radios %.0f Mbps; device 0 collapses to %.0f Mbps "
              "after %.1f s\n\n",
              hi, lo, collapse_s);

  const auto serve = [&](bool adaptive) {
    runtime::ServeOptions serve_options;
    serve_options.use_tcp = true;
    serve_options.inflight = inflight;
    serve_options.keep_outputs = true;
    serve_options.shaping = &shaping;
    std::unique_ptr<ctrl::Controller> controller;
    if (adaptive) {
      ctrl::ControllerConfig config;
      config.planner = &planner;
      config.model = &model;
      config.latency = latency;
      config.network = baseline;
      config.drift_threshold = 0.3;
      config.min_swap_gap_s = 0.5;
      controller = std::make_unique<ctrl::Controller>(config);
      serve_options.controller = controller.get();
    }
    auto result = runtime::serve_stream(model, initial, weights, images,
                                        n_devices, serve_options);
    if (controller) {
      const auto stats = controller->stats();
      std::printf("  controller: %d telemetry frames, %d replans, %d swaps\n",
                  stats.telemetry_frames, stats.replans, stats.swaps);
    }
    return result;
  };

  std::printf("static (initial strategy for the whole stream):\n");
  const auto fixed = serve(false);
  std::printf("  %6.2f IPS  wall %.3f s\n\n", fixed.measured_ips, fixed.wall_s);

  std::printf("adaptive (telemetry -> controller -> live epoch swaps):\n");
  const auto adaptive = serve(true);
  std::printf("  %6.2f IPS  wall %.3f s, %d reconfigurations\n",
              adaptive.measured_ips, adaptive.wall_s,
              static_cast<int>(adaptive.reconfigurations.size()));
  for (const auto& event : adaptive.reconfigurations) {
    std::printf("    epoch %d from image %d at %.2f s (predicted %.1f -> "
                "%.1f ms/image)\n",
                event.epoch, event.from_image, event.at_s,
                event.predicted_serving_ms, event.predicted_next_ms);
  }

  const bool exact = outputs_equal(fixed.outputs, adaptive.outputs);
  const bool reconfigured = !adaptive.reconfigurations.empty();
  const double speedup =
      fixed.measured_ips > 0 ? adaptive.measured_ips / fixed.measured_ips : 0;
  std::printf("\nspeedup (adaptive vs static): %.2fx, bit-exact outputs: %s\n",
              speedup, exact ? "yes" : "NO");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"runtime_adaptive\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"workload\": {\"model\": \"%s\", \"images\": %d, "
               "\"devices\": %d, \"inflight\": %d, \"transport\": "
               "\"tcp-loopback-shaped\", \"hi_mbps\": %.1f, \"lo_mbps\": "
               "%.1f, \"collapse_s\": %.2f},\n",
               model.name().c_str(), n_images, n_devices, inflight, hi, lo,
               collapse_s);
  std::fprintf(f, "  \"bit_exact_across_modes\": %s,\n",
               exact ? "true" : "false");
  std::fprintf(f,
               "  \"static_initial_strategy\": {\"ips\": %.3f, \"wall_s\": "
               "%.4f},\n",
               fixed.measured_ips, fixed.wall_s);
  std::fprintf(f,
               "  \"adaptive\": {\"ips\": %.3f, \"wall_s\": %.4f, "
               "\"reconfigurations\": [",
               adaptive.measured_ips, adaptive.wall_s);
  for (std::size_t k = 0; k < adaptive.reconfigurations.size(); ++k) {
    const auto& event = adaptive.reconfigurations[k];
    std::fprintf(f,
                 "%s{\"epoch\": %d, \"from_image\": %d, \"at_s\": %.3f, "
                 "\"predicted_serving_ms\": %.3f, \"predicted_next_ms\": "
                 "%.3f}",
                 k == 0 ? "" : ", ", event.epoch, event.from_image, event.at_s,
                 event.predicted_serving_ms, event.predicted_next_ms);
  }
  std::fprintf(f, "]},\n");
  std::fprintf(f, "  \"speedup_adaptive_vs_static\": %.3f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return exact && reconfigured ? 0 : 1;
}
