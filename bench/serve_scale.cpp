// Serving front-door scaling (PR-8 tentpole): N concurrent client streams
// multiplexed onto one shared provider fleet through the StreamServer.
// Sweeps the stream count (1, 4, 16 by default), measuring aggregate
// throughput and per-stream latency percentiles, while every stream checks
// its outputs bit-exact against the single-device reference — including
// across a mid-stream per-stream strategy swap on half the streams.
//
// BENCH_serve.json: per stream-count aggregate IPS and pooled/per-stream
// p50/p99 latency, plus the bit-exactness verdict (exit 1 if violated).
#include <cstdio>
#include <cstring>
#include <cmath>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/strategy.hpp"
#include "runtime/cluster.hpp"
#include "runtime/fabric.hpp"
#include "serve/stream_server.hpp"

namespace {

using namespace de;

cnn::CnnModel bench_model() {
  return cnn::ModelBuilder("serve-mini", 24, 24, 3)
      .conv_same(8, 3)
      .conv_same(8, 3)
      .maxpool(2, 2)
      .conv_same(12, 3)
      .conv(12, 3, 2, 1)
      .build();
}

sim::RawStrategy strategy_for(const cnn::CnnModel& m,
                              const std::vector<int>& boundaries,
                              const std::vector<double>& weights) {
  sim::RawStrategy strategy;
  strategy.volumes = cnn::volumes_from_boundaries(boundaries, m.num_layers());
  for (const auto& v : strategy.volumes) {
    strategy.cuts.push_back(
        core::proportional_split(cnn::volume_out_height(m, v), weights).cuts);
  }
  return strategy;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      std::max(0.0, std::ceil(q * static_cast<double>(samples.size())) - 1));
  return samples[std::min(idx, samples.size() - 1)];
}

struct StreamPoint {
  std::int64_t delivered = 0;
  int epochs = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

struct ScalePoint {
  int streams = 0;
  double wall_s = 0;
  double aggregate_ips = 0;
  double pooled_p50_ms = 0;
  double pooled_p99_ms = 0;
  std::vector<StreamPoint> per_stream;
  bool bit_exact = true;
};

ScalePoint run_point(int n_streams, int n_devices, int images_per_stream,
                     const cnn::CnnModel& m,
                     const std::vector<cnn::ConvWeights>& w) {
  auto fabric = runtime::make_fabric(n_devices, /*use_tcp=*/false);
  runtime::DataPlaneStats stats;
  std::vector<runtime::TenantModel> fleet_models{{&m, &w}};
  runtime::Supervisor providers =
      runtime::spawn_providers_multi(fabric, n_devices, fleet_models, stats);

  const auto base =
      strategy_for(m, {0, m.num_layers()},
                   std::vector<double>(static_cast<std::size_t>(n_devices),
                                       1.0));
  std::vector<double> skew(static_cast<std::size_t>(n_devices), 1.0);
  skew[0] = 2.5;  // the mid-stream swap target: deliberately different cuts
  const auto alt = strategy_for(m, {0, m.num_layers()}, skew);

  ScalePoint point;
  point.streams = n_streams;
  {
    std::vector<serve::TenantSpec> fleet{{&m, &w, base}};
    serve::StreamServerOptions options;
    options.max_streams = std::max(16, n_streams);
    serve::StreamServer server(fabric.requester(), n_devices, fleet, stats,
                               options);

    std::vector<int> ids;
    for (int s = 0; s < n_streams; ++s) {
      ids.push_back(server.open_stream(0));
    }
    std::atomic<bool> exact{true};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int s = 0; s < n_streams; ++s) {
      clients.emplace_back([&, s] {
        Rng rng(1000 + s);
        const int id = ids[static_cast<std::size_t>(s)];
        for (int k = 0; k < images_per_stream; ++k) {
          // Odd streams cut their lane over to the skewed partition
          // halfway — a per-stream epoch swap under full concurrent load.
          if (s % 2 == 1 && k == images_per_stream / 2) {
            server.swap_strategy(id, alt);
          }
          cnn::Tensor input(m.input_h(), m.input_w(), m.input_c());
          for (auto& v : input.data) {
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
          }
          if (!server.submit(id, input)) {
            exact = false;
            return;
          }
          auto out = server.pop(id);
          if (!out.has_value() ||
              out->data != runtime::run_reference(m, w, input).data) {
            exact = false;
            return;
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    const auto t1 = std::chrono::steady_clock::now();

    point.wall_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    const double total =
        static_cast<double>(n_streams) * images_per_stream;
    point.aggregate_ips = point.wall_s > 0 ? total / point.wall_s : 0.0;
    point.bit_exact = exact.load();

    std::vector<double> pooled;
    for (int s = 0; s < n_streams; ++s) {
      const auto snap = server.snapshot(ids[static_cast<std::size_t>(s)]);
      StreamPoint sp;
      sp.delivered = snap.delivered;
      sp.epochs = snap.epochs_pushed;
      sp.p50_ms = percentile(snap.latency_ms, 0.50);
      sp.p99_ms = percentile(snap.latency_ms, 0.99);
      point.per_stream.push_back(sp);
      pooled.insert(pooled.end(), snap.latency_ms.begin(),
                    snap.latency_ms.end());
    }
    point.pooled_p50_ms = percentile(pooled, 0.50);
    point.pooled_p99_ms = percentile(pooled, 0.99);
    server.close();
  }
  providers.join_all();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  int n_devices = 3;
  int images_per_stream = 0;
  std::vector<int> stream_counts = {1, 4, 16};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      images_per_stream = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--devices N] "
                   "[--images N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (images_per_stream == 0) images_per_stream = quick ? 6 : 24;

  const auto m = bench_model();
  Rng rng(99);
  const auto w = de::runtime::random_weights(m, rng);

  std::vector<ScalePoint> points;
  bool all_exact = true;
  for (const int n_streams : stream_counts) {
    std::printf("serving %2d stream(s) x %d images over %d devices... ",
                n_streams, images_per_stream, n_devices);
    std::fflush(stdout);
    auto point = run_point(n_streams, n_devices, images_per_stream, m, w);
    std::printf("%.1f ips aggregate, p50 %.2f ms, p99 %.2f ms%s\n",
                point.aggregate_ips, point.pooled_p50_ms, point.pooled_p99_ms,
                point.bit_exact ? "" : "  [BIT-EXACTNESS VIOLATED]");
    all_exact = all_exact && point.bit_exact;
    points.push_back(std::move(point));
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_scale\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"workload\": {\"model\": \"%s\", \"devices\": %d, "
               "\"images_per_stream\": %d, \"transport\": \"inproc\", "
               "\"swaps\": \"odd streams swap lanes mid-stream\"},\n",
               m.name().c_str(), n_devices, images_per_stream);
  std::fprintf(f, "  \"bit_exact_all_streams\": %s,\n",
               all_exact ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"streams\": %d, \"wall_s\": %.4f, "
                 "\"aggregate_ips\": %.3f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"per_stream\": [",
                 p.streams, p.wall_s, p.aggregate_ips, p.pooled_p50_ms,
                 p.pooled_p99_ms);
    for (std::size_t s = 0; s < p.per_stream.size(); ++s) {
      const auto& sp = p.per_stream[s];
      std::fprintf(f,
                   "%s{\"delivered\": %lld, \"epochs\": %d, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f}",
                   s == 0 ? "" : ", ", static_cast<long long>(sp.delivered),
                   sp.epochs, sp.p50_ms, sp.p99_ms);
    }
    std::fprintf(f, "]}%s\n", i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_exact ? 0 : 1;
}
