// Fig. 8: IPS under heterogeneous network bandwidths (Table II groups
// NA/NB/NC/ND), VGG-16, with all-Nano and all-Xavier providers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace de;
  using device::DeviceType;
  const auto options = bench::parse_args(argc, argv);
  bench::run_figure("Fig. 8(a) — heterogeneous networks, VGG-16, Nano",
                    {experiments::group_NA(DeviceType::kNano),
                     experiments::group_NB(DeviceType::kNano),
                     experiments::group_NC(DeviceType::kNano),
                     experiments::group_ND(DeviceType::kNano)},
                    options);
  bench::run_figure("Fig. 8(b) — heterogeneous networks, VGG-16, Xavier",
                    {experiments::group_NA(DeviceType::kXavier),
                     experiments::group_NB(DeviceType::kXavier),
                     experiments::group_NC(DeviceType::kXavier),
                     experiments::group_ND(DeviceType::kXavier)},
                    options);
  return 0;
}
