// Fig. 11: IPS across seven further models on Group-NA with Nano providers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);
  std::vector<experiments::Scenario> scenarios;
  for (const auto& model : cnn::zoo_names()) {
    if (model == "vgg16") continue;
    auto s = experiments::group_NA(device::DeviceType::kNano);
    s.model_name = model;
    s.name = model;
    scenarios.push_back(std::move(s));
  }
  bench::run_figure("Fig. 11 — model zoo, Group-NA, Nano", scenarios, options);
  return 0;
}
