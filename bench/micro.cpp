// Micro-benchmarks (google-benchmark): the hot paths under the planners —
// strategy simulation, Cp scoring, DDPG training steps, GEMM, LC-PSS.
#include <benchmark/benchmark.h>

#include "cnn/exec_engine.hpp"
#include "cnn/model_zoo.hpp"
#include "core/cost.hpp"
#include "core/lcpss.hpp"
#include "core/split_env.hpp"
#include "device/device.hpp"
#include "experiments/scenarios.hpp"
#include "nn/matrix.hpp"
#include "rl/ddpg.hpp"

namespace {

using namespace de;

const experiments::BuiltScenario& db50() {
  static const auto built = experiments::build(experiments::group_DB(50.0));
  return built;
}

void BM_ExecuteStrategy(benchmark::State& state) {
  const auto& built = db50();
  sim::RawStrategy strategy;
  strategy.volumes = cnn::volumes_from_boundaries({0, 10, 14, 18}, 18);
  for (const auto& v : strategy.volumes) {
    strategy.cuts.push_back(
        core::equal_split(cnn::volume_out_height(built.model, v), 4).cuts);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::execute_strategy(
        built.model, strategy, built.latency, built.network));
  }
}
BENCHMARK(BM_ExecuteStrategy);

void BM_CpScore(benchmark::State& state) {
  const auto model = cnn::vgg16();
  core::RandomSplitSet splits(100, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::mean_cp_score(model, {0, 10, 14, 18}, splits, 0.25));
  }
}
BENCHMARK(BM_CpScore);

void BM_Lcpss(benchmark::State& state) {
  const auto model = cnn::vgg16();
  core::LcpssConfig config;
  config.n_random_splits = static_cast<int>(state.range(0));
  config.parallel = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_lcpss(model, config));
  }
}
BENCHMARK(BM_Lcpss)->Arg(25)->Arg(100);

void BM_DdpgTrainStep(benchmark::State& state) {
  Rng rng(1);
  rl::DdpgConfig config;
  config.state_dim = 8;
  config.action_dim = 3;
  config.actor_hidden = {96, 64};
  config.critic_hidden = {128, 96, 48};
  config.batch_size = 32;
  rl::Ddpg agent(config, rng);
  rl::ReplayBuffer buffer(4096, 8, 3);
  for (int i = 0; i < 512; ++i) {
    rl::Transition t;
    t.state.assign(8, static_cast<float>(rng.uniform()));
    t.action.assign(3, static_cast<float>(rng.uniform(-1.0, 1.0)));
    t.reward = static_cast<float>(rng.uniform());
    t.next_state.assign(8, static_cast<float>(rng.uniform()));
    t.terminal = (i % 4 == 0);
    buffer.push(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step(buffer, rng));
  }
}
BENCHMARK(BM_DdpgTrainStep);

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  nn::Matrix a(n, n), b(n, n), out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.uniform());
    b.data()[i] = static_cast<float>(rng.uniform());
  }
  for (auto _ : state) {
    nn::gemm(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The two conv engines head to head on one mid-VGG row band (same arithmetic
// bit for bit; bench/kernel_scaling has the full scaling story).
void BM_ConvRows(benchmark::State& state, cnn::ExecEngine engine) {
  Rng rng(5);
  const auto layer = cnn::LayerConfig::conv(56, 56, 128, 128, 3, 1, 1);
  cnn::Tensor input(layer.in_h, layer.in_w, layer.in_c);
  for (auto& v : input.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto weights = cnn::ConvWeights::random(layer, rng);
  const cnn::RowInterval rows{0, 8};
  // Cache as the data plane runs: weights pack once, not per iteration.
  cnn::ExecCache cache;
  cnn::ExecContext ctx{engine, nullptr};
  ctx.cache = &cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cnn::conv_forward_rows(layer, input, 0, rows, weights, ctx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(layer.ops_for_rows(rows.size())));
}
void BM_ConvRowsReference(benchmark::State& state) {
  BM_ConvRows(state, cnn::ExecEngine::kReference);
}
void BM_ConvRowsFast(benchmark::State& state) {
  BM_ConvRows(state, cnn::ExecEngine::kFast);
}
BENCHMARK(BM_ConvRowsReference);
BENCHMARK(BM_ConvRowsFast);

void BM_VslRequiredInput(benchmark::State& state) {
  const auto model = cnn::vgg16();
  const auto layers = model.slice(0, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cnn::required_input_rows(layers, cnn::RowInterval{3, 9}));
  }
}
BENCHMARK(BM_VslRequiredInput);

}  // namespace

BENCHMARK_MAIN();
