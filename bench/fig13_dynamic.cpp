// Fig. 13: per-image processing latency under highly dynamic networks
// (Fig. 12 traces) with online strategy updates, 4x Nano.
//
//  * CoEdge replans its layer-by-layer linear split every monitoring tick
//    (cheap, but every strategy it can produce is transmission-heavy).
//  * AOFL re-runs its brute-force partition search when the mean throughput
//    shifts; the new strategy only becomes available after the measured
//    search time (paper: ~10 min on their controller).
//  * DistrEdge re-runs LC-PSS and fine-tunes its trained actor (paper §V-F:
//    20-210 s); the old strategy keeps serving meanwhile.
#include <chrono>

#include "bench_common.hpp"
#include "baselines/baselines.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);

  // 4 Nanos on highly dynamic links.
  auto scenario = experiments::homogeneous(device::DeviceType::kNano, 100.0);
  scenario.name = "dynamic-4xNano";
  auto built = experiments::build(scenario);
  for (int i = 0; i < 4; ++i) {
    built.network.set_device_link(
        i, net::Link::with_trace(net::dynamic_trace(60, 1 + static_cast<std::uint64_t>(i))));
  }

  const int minutes = 60;
  sim::StreamOptions stream;
  stream.n_images = 0;  // set per run below
  stream.replan_poll_s = 60.0;

  struct Series {
    std::string name;
    std::vector<Ms> minute_latency;
    Ms mean_update_s = 0;
  };
  std::vector<Series> series;

  auto minute_buckets = [&](const sim::StreamResult& r) {
    std::vector<Ms> buckets(minutes, 0.0);
    std::vector<int> counts(minutes, 0);
    for (std::size_t k = 0; k < r.per_image_ms.size(); ++k) {
      const int minute = std::min(minutes - 1, static_cast<int>(r.image_start_s[k] / 60.0));
      buckets[static_cast<std::size_t>(minute)] += r.per_image_ms[k];
      counts[static_cast<std::size_t>(minute)]++;
    }
    for (int m = 0; m < minutes; ++m) {
      if (counts[static_cast<std::size_t>(m)] > 0) {
        buckets[static_cast<std::size_t>(m)] /= counts[static_cast<std::size_t>(m)];
      }
    }
    return buckets;
  };

  // Enough images to cover ~60 minutes at >=100 ms per image.
  const int n_images = 60 * 60 * 12;

  // --- CoEdge: replan every tick, available immediately. ---
  {
    baselines::CoEdgePlanner planner;
    auto ctx = built.context();
    auto strategy = planner.plan(ctx);
    sim::StreamOptions so = stream;
    so.n_images = n_images;
    const auto r = sim::stream_with_replanning(
        built.model, strategy.to_raw(built.model), built.latency, built.network, so,
        [&](Seconds now) -> std::optional<sim::StrategyUpdate> {
          ctx.plan_time_s = now;
          return sim::StrategyUpdate{planner.plan(ctx).to_raw(built.model), now};
        });
    series.push_back({"CoEdge", minute_buckets(r), 0.0});
  }

  // --- AOFL: replan on >15% mean-rate change; available after 600 s. ---
  {
    baselines::AoflPlanner planner;
    auto ctx = built.context();
    auto strategy = planner.plan(ctx);
    double planned_rate = 0.0;
    for (int i = 0; i < 4; ++i) planned_rate += built.network.device_rate(i, 0.0);
    sim::StreamOptions so = stream;
    so.n_images = n_images;
    const auto r = sim::stream_with_replanning(
        built.model, strategy.to_raw(built.model), built.latency, built.network, so,
        [&](Seconds now) -> std::optional<sim::StrategyUpdate> {
          double rate = 0.0;
          for (int i = 0; i < 4; ++i) rate += built.network.device_rate(i, now);
          if (std::abs(rate - planned_rate) / planned_rate < 0.15) return std::nullopt;
          planned_rate = rate;
          ctx.plan_time_s = now;
          return sim::StrategyUpdate{planner.plan(ctx).to_raw(built.model),
                                     now + 600.0};  // brute-force search time
        });
    series.push_back({"AOFL", minute_buckets(r), 600.0});
  }

  // --- DistrEdge: replan on change; available after the measured
  //     LC-PSS + actor-fine-tune wall time. ---
  {
    auto config = core::DistrEdgeConfig::fast();
    config.osds.max_episodes = options.episodes;
    core::DistrEdgePlanner planner(config);
    auto ctx = built.context();
    auto strategy = planner.plan(ctx);
    double planned_rate = 0.0;
    for (int i = 0; i < 4; ++i) planned_rate += built.network.device_rate(i, 0.0);
    double update_total = 0.0;
    int updates = 0;
    sim::StreamOptions so = stream;
    so.n_images = n_images;
    const auto r = sim::stream_with_replanning(
        built.model, strategy.to_raw(built.model), built.latency, built.network, so,
        [&](Seconds now) -> std::optional<sim::StrategyUpdate> {
          double rate = 0.0;
          for (int i = 0; i < 4; ++i) rate += built.network.device_rate(i, now);
          if (std::abs(rate - planned_rate) / planned_rate < 0.15) return std::nullopt;
          planned_rate = rate;
          ctx.plan_time_s = now;
          const auto updated = planner.replan(ctx, options.episodes / 3);
          const Seconds wall_s = planner.last_plan_wall_ms() / 1000.0;
          update_total += wall_s;
          ++updates;
          return sim::StrategyUpdate{updated.to_raw(built.model), now + wall_s};
        });
    series.push_back({"DistrEdge", minute_buckets(r),
                      updates > 0 ? update_total / updates : 0.0});
  }

  Table table("Fig. 13 — per-image latency (ms) under dynamic networks, 4x Nano");
  table.set_header({"minute", "CoEdge", "AOFL", "DistrEdge"});
  for (int m = 0; m < minutes; m += 4) {
    table.add_row(std::to_string(m),
                  {series[0].minute_latency[static_cast<std::size_t>(m)],
                   series[1].minute_latency[static_cast<std::size_t>(m)],
                   series[2].minute_latency[static_cast<std::size_t>(m)]},
                  1);
  }
  table.print(std::cout);

  double coedge_mean = 0, aofl_mean = 0, de_mean = 0;
  for (int m = 0; m < minutes; ++m) {
    coedge_mean += series[0].minute_latency[static_cast<std::size_t>(m)];
    aofl_mean += series[1].minute_latency[static_cast<std::size_t>(m)];
    de_mean += series[2].minute_latency[static_cast<std::size_t>(m)];
  }
  std::cout << "\nmean latency: CoEdge " << coedge_mean / minutes << " ms, AOFL "
            << aofl_mean / minutes << " ms, DistrEdge " << de_mean / minutes
            << " ms (paper: DistrEdge at 40-65% of AOFL)\n";
  std::cout << "mean DistrEdge strategy-update wall time: "
            << series[2].mean_update_s << " s (AOFL modelled at 600 s)\n";
  return 0;
}
