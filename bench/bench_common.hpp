// Shared plumbing for the figure benches.
//
// Every bench regenerates one table/figure of the paper's evaluation and
// prints it as an ASCII table (rows = methods, columns = groups/series).
// Default budgets keep the whole suite laptop-friendly; pass --paper-scale
// to restore the published hyper-parameters (OsdsConfig::paper()).
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/harness.hpp"

namespace de::bench {

struct BenchOptions {
  bool paper_scale = false;
  int episodes = 500;       ///< OSDS episodes per case (fast mode)
  int n_images = 1000;      ///< images per IPS measurement
};

inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) options.paper_scale = true;
    if (std::strcmp(argv[i], "--episodes") == 0 && i + 1 < argc) {
      options.episodes = std::atoi(argv[i + 1]);
    }
  }
  return options;
}

inline experiments::HarnessOptions harness_options(const BenchOptions& options,
                                                   int n_devices = 4) {
  experiments::HarnessOptions harness;
  harness.n_images = options.n_images;
  if (options.paper_scale) {
    harness.distredge = core::DistrEdgeConfig::paper();
  } else {
    harness.distredge.osds.max_episodes = options.episodes;
  }
  if (n_devices >= 16) {
    harness.distredge.osds.sigma = 1.0;  // paper: sigma^2 = 1 at 16 providers
  }
  return harness;
}

/// Runs the standard 8-method lineup over `scenarios` and prints the table.
inline void run_figure(const std::string& title,
                       const std::vector<experiments::Scenario>& scenarios,
                       const BenchOptions& options) {
  const auto planners = baselines::figure_planner_names();
  const auto harness =
      harness_options(options, scenarios.front().num_devices());
  const auto results = experiments::run_matrix(planners, scenarios, harness);
  std::vector<std::string> names;
  names.reserve(scenarios.size());
  for (const auto& s : scenarios) names.push_back(s.name);
  experiments::ips_table(results, planners, names, title).print(std::cout);
  std::cout << std::endl;
}

}  // namespace de::bench
