// Fig. 4: stable shaped-WiFi throughput traces at 50/100/200/300 Mbps.
// Fig. 12: highly dynamic traces for the four devices of §V-F.
#include <iostream>

#include "common/table.hpp"
#include "net/trace.hpp"

int main() {
  using namespace de;

  Table fig4("Fig. 4 — sampled WiFi throughput (Mbps), per-minute slots");
  fig4.set_header({"minute", "300Mbps", "200Mbps", "100Mbps", "50Mbps"});
  std::vector<net::ThroughputTrace> stable;
  for (Mbps bw : {300.0, 200.0, 100.0, 50.0}) {
    stable.push_back(net::stable_wifi_trace(bw, 60, 42));
  }
  for (int minute = 0; minute < 60; minute += 5) {
    std::vector<double> row;
    for (const auto& trace : stable) row.push_back(trace.at(minute * 60.0));
    fig4.add_row(std::to_string(minute), row, 1);
  }
  fig4.print(std::cout);
  std::cout << std::endl;

  Table fig12("Fig. 12 — highly dynamic throughput (Mbps), per-minute slots");
  fig12.set_header({"minute", "device1", "device2", "device3", "device4"});
  std::vector<net::ThroughputTrace> dynamic;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    dynamic.push_back(net::dynamic_trace(60, seed));
  }
  for (int minute = 0; minute < 60; minute += 5) {
    std::vector<double> row;
    for (const auto& trace : dynamic) row.push_back(trace.at(minute * 60.0));
    fig12.add_row(std::to_string(minute), row, 1);
  }
  fig12.print(std::cout);
  return 0;
}
