// Fig. 14: computing latency vs. output width of a ten-layer volume — the
// nonlinearity evidence behind DistrEdge's design (§V-G). We sweep the
// output height of a 10-conv-layer volume on each GPU device type; the
// staircase + sub-linear shape is the point.
#include <iostream>

#include "cnn/model.hpp"
#include "cnn/vsl.hpp"
#include "common/table.hpp"
#include "device/device.hpp"

int main() {
  using namespace de;

  // Ten conv3 layers at 352x352x64 (mirrors the figure's "ten layers").
  cnn::ModelBuilder builder("ten", 352, 352, 64);
  for (int i = 0; i < 10; ++i) builder.conv_same(64, 3);
  const auto model = builder.build();
  const std::span<const cnn::LayerConfig> volume(model.layers());

  Table table("Fig. 14 — volume computing latency (ms) vs output rows");
  table.set_header({"rows", "Nano", "TX2", "Xavier", "TX2 ms/row"});
  for (int rows = 50; rows <= 350; rows += 10) {
    std::vector<double> row;
    double tx2_ms = 0.0;
    for (auto type : {device::DeviceType::kNano, device::DeviceType::kTx2,
                      device::DeviceType::kXavier}) {
      const auto latency = device::make_latency_model(type);
      const auto per_layer =
          cnn::per_layer_output_rows(volume, cnn::RowInterval{0, rows});
      double total = 0.0;
      for (std::size_t i = 0; i < volume.size(); ++i) {
        total += latency->layer_ms(volume[i], per_layer[i].size());
      }
      if (type == device::DeviceType::kTx2) tx2_ms = total;
      row.push_back(total);
    }
    row.push_back(tx2_ms / rows);  // nonlinearity: not constant
    table.add_row(std::to_string(rows), row);
  }
  table.print(std::cout);
  std::cout << "\nA linear device would show constant ms/row; the staircase\n"
               "and the falling ms/row are what linear-ratio splitters miss.\n";
  return 0;
}
