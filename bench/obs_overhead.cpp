// Tracing-overhead gate: the same streaming workload as
// bench/runtime_stream (per-layer volumes, staggered cuts, loopback TCP)
// measured with the TraceRecorder off and on, interleaved best-of-N, so the
// traced-vs-untraced IPS delta is the observability plane's true hot-path
// cost — the budget DESIGN.md commits to is < 2%. Results land in
// BENCH_obs.json; --gate exits nonzero when the measured overhead exceeds
// the budget (CI smoke runs it non-gating and uploads the JSON).
//
//   bench_obs_overhead [--quick] [--gate] [--out PATH] [--images N]
//                      [--model NAME] [--devices N] [--inflight K]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cnn/model_zoo.hpp"
#include "common/require.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/serve.hpp"

namespace {

using namespace de;

/// Same staggered per-layer-volume strategy as bench/runtime_stream: every
/// volume boundary redistributes rows, so the halo path (the most heavily
/// instrumented one) is genuinely hot.
sim::RawStrategy staggered_strategy(const cnn::CnnModel& m, int n_devices) {
  sim::RawStrategy strategy;
  std::vector<int> boundaries;
  for (int l = 0; l <= m.num_layers(); ++l) boundaries.push_back(l);
  strategy.volumes = cnn::volumes_from_boundaries(boundaries, m.num_layers());
  for (std::size_t v = 0; v < strategy.volumes.size(); ++v) {
    const int h = cnn::volume_out_height(m, strategy.volumes[v]);
    std::vector<int> cuts{0};
    for (int j = 1; j < n_devices; ++j) {
      const int at = v % 2 == 0 ? j * h / n_devices
                                : std::min(h, ((2 * j - 1) * h + n_devices) /
                                                  (2 * n_devices));
      cuts.push_back(std::clamp(at, cuts.back(), h));
    }
    cuts.push_back(h);
    strategy.cuts.push_back(std::move(cuts));
  }
  return strategy;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  std::string out_path = "BENCH_obs.json";
  std::string model_name = "edgenet";
  int n_images = 0;
  int n_devices = 4;
  int inflight = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      n_images = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_name = argv[++i];
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      inflight = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--gate] [--out PATH] [--images N] "
                   "[--model NAME] [--devices N] [--inflight K]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_images == 0) n_images = quick ? 32 : 96;
  constexpr double kBudget = 0.02;  // the DESIGN.md < 2% IPS commitment

  const auto model = cnn::model_by_name(model_name);
  const auto strategy = staggered_strategy(model, n_devices);
  Rng rng(123);
  const auto weights = runtime::random_weights(model, rng);
  std::vector<cnn::Tensor> images;
  images.reserve(static_cast<std::size_t>(n_images));
  for (int k = 0; k < n_images; ++k) {
    cnn::Tensor t(model.input_h(), model.input_w(), model.input_c());
    for (auto& v : t.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    images.push_back(std::move(t));
  }

  std::printf("obs overhead: model %s, %d devices, %d images, K=%d, "
              "loopback TCP, budget %.1f%%\n\n",
              model.name().c_str(), n_devices, n_images, inflight,
              kBudget * 100);

  std::uint64_t traced_events = 0;
  std::uint64_t traced_dropped = 0;
  const auto run_lap = [&](bool traced) {
    runtime::ServeOptions options;
    options.use_tcp = true;
    options.inflight = inflight;
    // Attaching a TraceCapture implies telemetry_every=1; pin the untraced
    // lap to the same cadence so the delta measures the recorder alone, not
    // a different telemetry schedule.
    options.telemetry_every = 1;
    obs::TraceCapture capture;
    if (traced) {
      options.trace = &capture;
      obs::TraceRecorder::instance().enable({});
    }
    const auto r = runtime::serve_stream(model, strategy, weights, images,
                                         n_devices, options);
    if (traced) {
      obs::TraceRecorder::instance().disable();
      traced_events = capture.dump.total_events();
      traced_dropped = capture.dump.total_dropped();
    }
    return r.measured_ips;
  };

  // Warm-up, then adjacent (off, on) lap pairs. Host load drifts on the
  // scale of whole laps, so each pair's on/off ratio cancels the drift it
  // shares; the median pair ratio is the overhead estimate, robust to one
  // outlier pair in either direction.
  (void)run_lap(false);
  const int pairs = quick ? 3 : 5;
  double ips_off = 0;
  double ips_on = 0;
  std::vector<double> ratios;
  for (int pair = 0; pair < pairs; ++pair) {
    const double off = run_lap(false);
    const double on = run_lap(true);
    ips_off = std::max(ips_off, off);
    ips_on = std::max(ips_on, on);
    if (off > 0) ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0
      : ratios.size() % 2 == 1
          ? ratios[ratios.size() / 2]
          : (ratios[ratios.size() / 2 - 1] + ratios[ratios.size() / 2]) / 2;
  const double overhead = 1.0 - median_ratio;
  const bool within = overhead <= kBudget;

  std::printf("untraced: %8.2f IPS (best lap)\n", ips_off);
  std::printf("traced  : %8.2f IPS (best lap; %llu events kept, %llu "
              "dropped)\n",
              ips_on, static_cast<unsigned long long>(traced_events),
              static_cast<unsigned long long>(traced_dropped));
  std::printf("overhead: %+.2f%% of IPS (median of %d paired laps) — "
              "budget %.1f%%: %s\n",
              overhead * 100, pairs, kBudget * 100,
              within ? "within" : "EXCEEDED");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"workload\": {\"model\": \"%s\", \"images\": %d, "
               "\"devices\": %d, \"inflight\": %d, \"transport\": "
               "\"tcp-loopback\"},\n",
               model.name().c_str(), n_images, n_devices, inflight);
  std::fprintf(f, "  \"ips_untraced\": %.3f,\n", ips_off);
  std::fprintf(f, "  \"ips_traced\": %.3f,\n", ips_on);
  std::fprintf(f, "  \"overhead_fraction\": %.5f,\n", overhead);
  std::fprintf(f, "  \"budget_fraction\": %.5f,\n", kBudget);
  std::fprintf(f, "  \"within_budget\": %s,\n", within ? "true" : "false");
  std::fprintf(f, "  \"traced_events\": %llu,\n",
               static_cast<unsigned long long>(traced_events));
  std::fprintf(f, "  \"traced_dropped\": %llu\n",
               static_cast<unsigned long long>(traced_dropped));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (gate && !within) return 1;
  return 0;
}
