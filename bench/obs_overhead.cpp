// Tracing-overhead gate: the same streaming workload as
// bench/runtime_stream (per-layer volumes, staggered cuts, loopback TCP)
// measured with the observability plane off and on, interleaved in
// alternating pair order, so the traced-vs-untraced IPS delta is the ops
// plane's true hot-path cost — the budget DESIGN.md commits to is < 2%.
// The "on" laps carry the full PR-10 ops plane: flight-recorder tracing,
// an AdminServer with the serve routes registered, per-delivery queue-depth
// sampling, and a 1 Hz background scraper hitting /metrics + /membership —
// the gate must hold with a live scrape load, not just a quiet recorder.
//
// Noise handling: host load drifts on the scale of whole laps, so each
// adjacent (off, on) pair cancels the drift it shares, and alternating
// which side runs first cancels any residual monotone trend. Scheduler
// noise is one-sided — a stall can only LOWER a lap's IPS, never raise
// it — so the gate uses two independent estimators: best traced lap vs
// best untraced lap (the min-time estimator) and the median pair ratio
// (drift-cancelling). Either alone false-positives at observed
// single-core noise levels; a real regression moves both, so the gate
// trips only when both exceed the budget. The spread of pair ratios
// (`noise_band`) and their variance (`ratio_variance`) are reported so a
// reader can tell a real regression from measurement noise.
// `overhead_fraction` is clamped at 0 (a negative raw value just means
// the noise floor exceeds the signal); the unclamped value is kept as
// `overhead_raw`.
//
//   bench_obs_overhead [--quick] [--gate] [--out PATH] [--images N]
//                      [--model NAME] [--devices N] [--inflight K]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cnn/model_zoo.hpp"
#include "common/require.hpp"
#include "obs/admin.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/serve.hpp"

namespace {

using namespace de;

/// Same staggered per-layer-volume strategy as bench/runtime_stream: every
/// volume boundary redistributes rows, so the halo path (the most heavily
/// instrumented one) is genuinely hot.
sim::RawStrategy staggered_strategy(const cnn::CnnModel& m, int n_devices) {
  sim::RawStrategy strategy;
  std::vector<int> boundaries;
  for (int l = 0; l <= m.num_layers(); ++l) boundaries.push_back(l);
  strategy.volumes = cnn::volumes_from_boundaries(boundaries, m.num_layers());
  for (std::size_t v = 0; v < strategy.volumes.size(); ++v) {
    const int h = cnn::volume_out_height(m, strategy.volumes[v]);
    std::vector<int> cuts{0};
    for (int j = 1; j < n_devices; ++j) {
      const int at = v % 2 == 0 ? j * h / n_devices
                                : std::min(h, ((2 * j - 1) * h + n_devices) /
                                                  (2 * n_devices));
      cuts.push_back(std::clamp(at, cuts.back(), h));
    }
    cuts.push_back(h);
    strategy.cuts.push_back(std::move(cuts));
  }
  return strategy;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  std::string out_path = "BENCH_obs.json";
  std::string model_name = "edgenet";
  int n_images = 0;
  int n_devices = 4;
  int inflight = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      n_images = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_name = argv[++i];
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      inflight = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--gate] [--out PATH] [--images N] "
                   "[--model NAME] [--devices N] [--inflight K]\n",
                   argv[0]);
      return 2;
    }
  }
  // Gate runs get 4x-longer laps by default: each lap pays a fixed fleet
  // spin-up (TCP dials, weight decode, thread starts) whose variance is
  // the dominant noise term, so the on/off IPS ratio only resolves a <2%
  // signal once serving time dwarfs it.
  if (n_images == 0) n_images = quick ? 32 : (gate ? 384 : 96);
  constexpr double kBudget = 0.02;  // the DESIGN.md < 2% IPS commitment

  const auto model = cnn::model_by_name(model_name);
  const auto strategy = staggered_strategy(model, n_devices);
  Rng rng(123);
  const auto weights = runtime::random_weights(model, rng);
  std::vector<cnn::Tensor> images;
  images.reserve(static_cast<std::size_t>(n_images));
  for (int k = 0; k < n_images; ++k) {
    cnn::Tensor t(model.input_h(), model.input_w(), model.input_c());
    for (auto& v : t.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    images.push_back(std::move(t));
  }

  std::printf("obs overhead: model %s, %d devices, %d images, K=%d, "
              "loopback TCP + 1 Hz admin scrape, budget %.1f%%\n\n",
              model.name().c_str(), n_devices, n_images, inflight,
              kBudget * 100);

  // The ops plane the traced laps carry: an admin endpoint plus a 1 Hz
  // scraper that runs for the whole bench. Between traced laps (and during
  // untraced ones) the routes are unregistered and the scrapes 404 —
  // exactly the live-cluster situation the gate should price in.
  obs::AdminServer admin;
  std::atomic<bool> scraping{true};
  std::thread scraper([&admin, &scraping] {
    while (scraping.load(std::memory_order_relaxed)) {
      (void)obs::http_get(admin.port(), "/metrics");
      (void)obs::http_get(admin.port(), "/membership");
      for (int tick = 0; tick < 10; ++tick) {
        if (!scraping.load(std::memory_order_relaxed)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  });

  std::uint64_t traced_events = 0;
  std::uint64_t traced_dropped = 0;
  const auto run_lap = [&](bool traced) {
    runtime::ServeOptions options;
    options.use_tcp = true;
    options.inflight = inflight;
    // Attaching a TraceCapture implies telemetry_every=1; pin the untraced
    // lap to the same cadence so the delta measures the ops plane alone,
    // not a different telemetry schedule.
    options.telemetry_every = 1;
    obs::TraceCapture capture;
    if (traced) {
      options.trace = &capture;
      options.admin = &admin;
      options.slo_ms = 250;  // exercise the SLO window's violation path
      obs::TraceRecorder::instance().enable({});
    }
    const auto r = runtime::serve_stream(model, strategy, weights, images,
                                         n_devices, options);
    if (traced) {
      obs::TraceRecorder::instance().disable();
      traced_events = capture.dump.total_events();
      traced_dropped = capture.dump.total_dropped();
    }
    return r.measured_ips;
  };

  // Warm-up, then adjacent (off, on) pairs with alternating order.
  (void)run_lap(false);
  const int pairs = quick ? 3 : (gate ? 7 : 5);
  struct Measurement {
    double ips_off = 0;
    double ips_on = 0;
    double median_ratio = 1.0;
    double mean_ratio = 1.0;
    double ratio_variance = 0;
    double noise_band = 0;
  };
  const auto measure = [&] {
    Measurement m;
    std::vector<double> ratios;
    for (int pair = 0; pair < pairs; ++pair) {
      double off = 0;
      double on = 0;
      if (pair % 2 == 0) {
        off = run_lap(false);
        on = run_lap(true);
      } else {
        on = run_lap(true);
        off = run_lap(false);
      }
      m.ips_off = std::max(m.ips_off, off);
      m.ips_on = std::max(m.ips_on, on);
      if (off > 0) ratios.push_back(on / off);
    }
    std::sort(ratios.begin(), ratios.end());
    if (!ratios.empty()) {
      m.median_ratio =
          ratios.size() % 2 == 1
              ? ratios[ratios.size() / 2]
              : (ratios[ratios.size() / 2 - 1] + ratios[ratios.size() / 2]) /
                    2;
      double mean = 0;
      for (const double r : ratios) mean += r;
      m.mean_ratio = mean / ratios.size();
      for (const double r : ratios) {
        m.ratio_variance += (r - m.mean_ratio) * (r - m.mean_ratio);
      }
      m.ratio_variance =
          ratios.size() > 1 ? m.ratio_variance / (ratios.size() - 1) : 0;
      m.noise_band = ratios.back() - ratios.front();
    }
    return m;
  };
  // Best-vs-best: stalls are one-sided, so each mode's fastest lap is its
  // lowest-noise speed estimate. The median pair ratio is the second,
  // independent estimator: it cancels lap-scale drift but is softer on
  // outliers. On an oversubscribed host either one alone false-positives
  // at single-core noise levels (±4% observed); a true >budget regression
  // moves both, so the gate trips only when they agree. Even then, a
  // sustained scheduler/throttle window spanning a whole sweep can bias
  // both estimators the same way (observed: minutes-long patches where
  // untraced laps run 5%+ apart with no code difference at all), so the
  // gate re-runs the full sweep up to three times and passes on the first
  // clean one: tracing cost is a fixed property of the code, host noise
  // only ever inflates it, and a real >budget regression fails every
  // attempt.
  const int max_attempts = gate ? 3 : 1;
  Measurement m;
  double overhead_raw = 0;
  double overhead = 0;
  double overhead_median = 0;
  bool within = false;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    m = measure();
    overhead_raw = m.ips_off > 0 ? 1.0 - m.ips_on / m.ips_off : 0.0;
    overhead = std::max(0.0, overhead_raw);
    overhead_median = std::max(0.0, 1.0 - m.median_ratio);
    within = overhead <= kBudget || overhead_median <= kBudget;
    if (within || attempt == max_attempts) break;
    std::printf("attempt %d/%d noisy (%.2f%% / %.2f%%, band %.2f%%); "
                "re-running sweep\n",
                attempt, max_attempts, overhead * 100, overhead_median * 100,
                m.noise_band * 100);
  }
  const double ips_off = m.ips_off;
  const double ips_on = m.ips_on;
  const double median_ratio = m.median_ratio;
  const double ratio_variance = m.ratio_variance;
  const double noise_band = m.noise_band;

  scraping.store(false, std::memory_order_relaxed);
  scraper.join();
  admin.close();

  std::printf("untraced: %8.2f IPS (best lap)\n", ips_off);
  std::printf("traced  : %8.2f IPS (best lap; %llu events kept, %llu "
              "dropped)\n",
              ips_on, static_cast<unsigned long long>(traced_events),
              static_cast<unsigned long long>(traced_dropped));
  std::printf("overhead: %.2f%% best-vs-best / %.2f%% median of %d pairs "
              "(raw %+.2f%%, noise band %.2f%%) — budget %.1f%% on either "
              "estimator: %s\n",
              overhead * 100, overhead_median * 100, pairs,
              overhead_raw * 100, noise_band * 100, kBudget * 100,
              within ? "within" : "EXCEEDED");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n",
               gate ? "gate" : quick ? "quick" : "full");
  std::fprintf(f,
               "  \"workload\": {\"model\": \"%s\", \"images\": %d, "
               "\"devices\": %d, \"inflight\": %d, \"transport\": "
               "\"tcp-loopback\", \"admin_scrape_hz\": 1},\n",
               model.name().c_str(), n_images, n_devices, inflight);
  std::fprintf(f, "  \"ips_untraced\": %.3f,\n", ips_off);
  std::fprintf(f, "  \"ips_traced\": %.3f,\n", ips_on);
  std::fprintf(f, "  \"overhead_fraction\": %.5f,\n", overhead);
  std::fprintf(f, "  \"overhead_raw\": %.5f,\n", overhead_raw);
  std::fprintf(f, "  \"median_pair_ratio\": %.5f,\n", median_ratio);
  std::fprintf(f, "  \"ratio_variance\": %.7f,\n", ratio_variance);
  std::fprintf(f, "  \"noise_band\": %.5f,\n", noise_band);
  std::fprintf(f, "  \"budget_fraction\": %.5f,\n", kBudget);
  std::fprintf(f, "  \"within_budget\": %s,\n", within ? "true" : "false");
  std::fprintf(f, "  \"traced_events\": %llu,\n",
               static_cast<unsigned long long>(traced_events));
  std::fprintf(f, "  \"traced_dropped\": %llu\n",
               static_cast<unsigned long long>(traced_dropped));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (gate && !within) return 1;
  return 0;
}
