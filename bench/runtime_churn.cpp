// Elastic-membership churn bench: the same image stream is served three
// times over a paced loopback-TCP fabric —
//
//  * stable      — no chaos; the reference run and the IPS baseline;
//  * kill-one    — one device is killed mid-stream; the controller's lease
//                  lapses, the fleet replans over the survivors, and every
//                  in-flight image the dead device owned is re-dispatched;
//  * kill-rejoin — the device is killed, then revived later; it comes back
//                  as a fresh joiner (new chunk-id incarnation) adopted at
//                  an epoch boundary and serves the tail of the stream.
//
// Reported per churn scenario: time from the kill to the survivor epoch
// (recovery), time from the revive to the adoption epoch (kill-rejoin), and
// the serving-rate dip — min sliding-window IPS over the run against the
// stable run's throughput. Results land in BENCH_churn.json. Exit status
// gates on bit-exactness against the single-device reference plus the
// expected membership transitions (>=1 death per churn run, >=1 join on the
// rejoin run), NOT on the timing numbers (CI runners are noisy).
//
//   bench_runtime_churn [--quick] [--out PATH] [--images N] [--devices N]
//                       [--inflight K] [--model NAME] [--mbps R]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cnn/model_zoo.hpp"
#include "common/require.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/planner.hpp"
#include "device/device.hpp"
#include "runtime/serve.hpp"

namespace {

using namespace de;

/// Min sliding-window IPS over the delivery timeline (window = `w` images).
double min_window_ips(const std::vector<double>& delivered_at_s, int w) {
  double lowest = 0.0;
  for (std::size_t i = static_cast<std::size_t>(w);
       i < delivered_at_s.size(); ++i) {
    const double span =
        delivered_at_s[i] - delivered_at_s[i - static_cast<std::size_t>(w)];
    if (span <= 0.0) continue;
    const double ips = static_cast<double>(w) / span;
    if (lowest == 0.0 || ips < lowest) lowest = ips;
  }
  return lowest;
}

/// Stream time of the first reconfiguration that removed (or adopted)
/// devices; negative when none happened.
double first_event_at_s(const std::vector<runtime::ReconfigEvent>& events,
                        bool joins) {
  for (const auto& ev : events) {
    if ((joins ? ev.joins : ev.deaths) > 0) return ev.at_s;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_churn.json";
  std::string model_name = "edgenet";
  int n_images = 0;
  int n_devices = 6;
  int inflight = 4;
  double mbps = 60.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc) {
      n_images = std::max(8, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      n_devices = std::max(2, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      inflight = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_name = argv[++i];
    } else if (std::strcmp(argv[i], "--mbps") == 0 && i + 1 < argc) {
      mbps = std::max(1.0, std::atof(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--images N] "
                   "[--devices N] [--inflight K] [--model NAME] [--mbps R]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_images == 0) n_images = quick ? 48 : 96;

  const auto model = cnn::model_by_name(model_name);
  Rng rng(211);
  const auto weights = runtime::random_weights(model, rng);
  std::vector<cnn::Tensor> images;
  images.reserve(static_cast<std::size_t>(n_images));
  for (int k = 0; k < n_images; ++k) {
    cnn::Tensor t(model.input_h(), model.input_w(), model.input_c());
    for (auto& v : t.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    images.push_back(std::move(t));
  }
  std::vector<cnn::Tensor> reference;
  reference.reserve(images.size());
  for (const auto& image : images) {
    reference.push_back(runtime::run_reference(model, weights, image));
  }

  // Paced fabric: constant-rate radios make the recovery dip measurable
  // (and give the rejoin time to be adopted before the stream ends).
  rpc::FaultSpec faults;  // zero probabilities: deaths come from the
  faults.seed = 29;       // chaos schedule, not random loss
  rpc::ShapingSpec shaping;
  shaping.node_traces.assign(static_cast<std::size_t>(n_devices) + 1,
                             net::ThroughputTrace::constant(mbps));

  net::Network baseline_net(n_devices, mbps, mbps);
  sim::ClusterLatency latency;
  for (int i = 0; i < n_devices; ++i) {
    latency.push_back(device::make_latency_model(device::DeviceType::kNano));
  }
  ctrl::BandwidthProportionalPlanner planner;
  core::PlanContext plan_ctx;
  plan_ctx.model = &model;
  plan_ctx.latency = latency;
  plan_ctx.network = &baseline_net;
  const auto initial = planner.plan(plan_ctx).to_raw(model);

  const int kill_at = n_images / 4;
  const int revive_at = n_images / 2;
  const rpc::NodeId victim = 1;

  std::printf("model %s: %dx%dx%d, %d layers; %d devices, %d images, K=%d, "
              "loopback TCP paced at %.0f Mbps/radio\n",
              model.name().c_str(), model.input_h(), model.input_w(),
              model.input_c(), model.num_layers(), n_devices, n_images,
              inflight, mbps);
  std::printf("schedule: kill device %d after %d deliveries; rejoin run "
              "revives it after %d\n\n",
              victim, kill_at, revive_at);

  const auto serve = [&](const std::vector<runtime::ChaosEvent>& chaos) {
    ctrl::ControllerConfig config;
    config.planner = &planner;
    config.model = &model;
    config.latency = latency;
    config.network = baseline_net;
    config.poll_ms = 2;
    config.lease_ms = 80;
    config.drift_threshold = 1e9;  // membership decisions only
    ctrl::Controller controller(config);

    runtime::ServeOptions options;
    options.use_tcp = true;
    options.inflight = inflight;
    options.keep_outputs = true;
    options.faults = &faults;
    options.shaping = &shaping;
    options.reliability.enabled = true;
    options.heartbeat_ms = 5;
    options.provider_max_restarts = 8;
    options.controller = &controller;
    options.chaos = chaos;
    return runtime::serve_stream(model, initial, weights, images, n_devices,
                                 options);
  };

  const auto bit_exact = [&](const runtime::ServeResult& result) {
    if (result.outputs.size() != reference.size()) return false;
    for (std::size_t k = 0; k < reference.size(); ++k) {
      if (result.outputs[k].data != reference[k].data) return false;
    }
    return true;
  };

  const int dip_window = std::max(4, inflight);
  struct Row {
    const char* name;
    runtime::ServeResult result;
    bool exact = false;
    double recovery_ms = -1.0;
    double adoption_ms = -1.0;
    double min_ips = 0.0;
  };
  std::vector<Row> rows;
  rows.push_back({"stable", serve({}), false, -1.0, -1.0, 0.0});
  rows.push_back(
      {"kill_one", serve({{kill_at, victim, true}}), false, -1.0, -1.0, 0.0});
  rows.push_back({"kill_rejoin",
                  serve({{kill_at, victim, true}, {revive_at, victim, false}}),
                  false, -1.0, -1.0, 0.0});

  const double stable_ips = rows[0].result.measured_ips;
  for (auto& row : rows) {
    const auto& r = row.result;
    row.exact = bit_exact(r);
    row.min_ips = min_window_ips(r.delivered_at_s, dip_window);
    const double death_at = first_event_at_s(r.reconfigurations, false);
    const double join_at = first_event_at_s(r.reconfigurations, true);
    if (death_at >= 0.0 && !r.chaos_applied_at_s.empty()) {
      row.recovery_ms = (death_at - r.chaos_applied_at_s[0]) * 1000.0;
    }
    if (join_at >= 0.0 && r.chaos_applied_at_s.size() >= 2) {
      row.adoption_ms = (join_at - r.chaos_applied_at_s[1]) * 1000.0;
    }
    std::printf("%-12s %6.2f IPS  wall %6.3f s  dip->%6.2f IPS  "
                "deaths %d joins %d cancelled %lld  recovery %7.1f ms  "
                "adoption %7.1f ms  bit-exact %s\n",
                row.name, r.measured_ips, r.wall_s, row.min_ips, r.deaths,
                r.joins, static_cast<long long>(r.images_cancelled),
                row.recovery_ms, row.adoption_ms, row.exact ? "yes" : "NO");
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"runtime_churn\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"workload\": {\"model\": \"%s\", \"images\": %d, "
               "\"devices\": %d, \"inflight\": %d, \"transport\": "
               "\"tcp-loopback-shaped\", \"mbps\": %.1f, \"kill_at\": %d, "
               "\"revive_at\": %d, \"victim\": %d, \"lease_ms\": 80, "
               "\"heartbeat_ms\": 5, \"dip_window_images\": %d},\n",
               model.name().c_str(), n_images, n_devices, inflight, mbps,
               kill_at, revive_at, victim, dip_window);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& r = row.result;
    std::fprintf(
        f,
        "  \"%s\": {\"ips\": %.3f, \"wall_s\": %.4f, \"min_window_ips\": "
        "%.3f, \"ips_dip_frac\": %.3f, \"recovery_ms\": %.1f, "
        "\"adoption_ms\": %.1f, \"deaths\": %d, \"joins\": %d, "
        "\"images_cancelled\": %lld, \"retx_cancelled\": %lld, "
        "\"provider_restarts\": %lld, \"bit_exact\": %s}%s\n",
        row.name, r.measured_ips, r.wall_s, row.min_ips,
        stable_ips > 0.0 ? 1.0 - row.min_ips / stable_ips : 0.0,
        row.recovery_ms, row.adoption_ms, r.deaths, r.joins,
        static_cast<long long>(r.images_cancelled),
        static_cast<long long>(r.retx_cancelled),
        static_cast<long long>(r.provider_restarts),
        row.exact ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  const bool gate = rows[0].exact && rows[1].exact && rows[2].exact &&
                    rows[0].result.deaths == 0 && rows[1].result.deaths == 1 &&
                    rows[2].result.deaths == 1 && rows[2].result.joins == 1;
  return gate ? 0 : 1;
}
