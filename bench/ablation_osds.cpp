// Ablation of the OSDS design choices DESIGN.md calls out:
//   * warm-start episodes (heuristic splits seeded into the replay buffer)
//   * hill-climbing episodes around the best-seen decisions
//   * pure Alg. 2 (neither) at the same episode budget
// plus the LC-PSS partition itself (OSDS on the whole model as one volume).
#include "bench_common.hpp"
#include "common/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace de;
  const auto options = bench::parse_args(argc, argv);

  struct Variant {
    std::string name;
    bool warm_start;
    double local_search;
    bool use_lcpss;
  };
  const std::vector<Variant> variants{
      {"full (warm + hill-climb)", true, 0.25, true},
      {"no warm start", false, 0.25, true},
      {"no hill-climb", true, 0.0, true},
      {"pure Alg. 2", false, 0.0, true},
      {"full, no LC-PSS (1 volume)", true, 0.25, false},
  };
  const std::vector<experiments::Scenario> scenarios{
      experiments::group_DB(50.0),
      experiments::group_NA(device::DeviceType::kNano)};

  std::vector<experiments::BuiltScenario> built;
  for (const auto& s : scenarios) built.push_back(experiments::build(s));

  std::vector<std::vector<double>> ips(variants.size(),
                                       std::vector<double>(scenarios.size()));
  ThreadPool::shared().parallel_for(
      variants.size() * scenarios.size(), [&](std::size_t k) {
        const auto& variant = variants[k / scenarios.size()];
        const auto& scenario = built[k % scenarios.size()];
        const auto ctx = scenario.context();

        std::vector<int> boundaries{0, scenario.model.num_layers()};
        if (variant.use_lcpss) {
          core::LcpssConfig lcpss;
          lcpss.n_devices = ctx.num_devices();
          lcpss.parallel = false;
          boundaries = core::run_lcpss(scenario.model, lcpss).boundaries;
        }
        core::OsdsConfig osds = core::OsdsConfig::fast();
        osds.max_episodes = options.episodes;
        osds.warm_start = variant.warm_start;
        osds.local_search_prob = variant.local_search;
        const auto r = core::run_osds(scenario.model, boundaries, ctx.latency,
                                      *ctx.network, osds);
        ips[k / scenarios.size()][k % scenarios.size()] = 1000.0 / r.best_ms;
      });

  Table table("OSDS ablation — IPS at " + std::to_string(options.episodes) +
              " episodes");
  table.set_header({"variant", scenarios[0].name, scenarios[1].name});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    table.add_row(variants[v].name, ips[v]);
  }
  table.print(std::cout);
  std::cout << "\nWarm starts set the floor, hill-climbing polishes cut\n"
               "alignment, LC-PSS provides the partition that makes vertical\n"
               "splitting worthwhile at all.\n";
  return 0;
}
